"""Atmosphere physics kernels on the performance-portability layer.

The §4 portability contract says *every* component's hot loops run
through the same Kokkos-style dispatch; this module ports the
conventional-physics schemes from ad-hoc whole-array numpy onto
``pp.parallel_for`` with the hash-based registry, exactly as
``ocn/kernels.py`` does for LICOM.  The column dimension is the parallel
axis: each kernel owns a chunk of columns (what a CPE or a GPU thread
block would own) and is bit-identical to the whole-array reference
because columns are independent —

* :func:`radiation_kernel` — gray radiation per column chunk (the water
  path integral is per-column, so chunking commutes with it);
* :func:`surface_flux_kernel` — bulk surface-layer fluxes (pointwise in
  the lowest level);
* :func:`convective_kernel` — pairwise convective adjustment; the sweep
  loop's early exit is per-chunk, which is safe because extra sweeps on
  an already-stable chunk are exact no-ops;
* :func:`saturation_kernel` — Tetens saturation humidity as an MDRange
  over (columns, levels), the tiled two-dimensional launch;
* :func:`condensation_kernel` — large-scale condensation and the
  random-overlap cloud diagnosis per column chunk.

Each host-side ``run_*`` wrapper dispatches through :data:`ATM_KERNELS`
and accepts an optional :class:`~repro.pp.KernelStats` accumulator so
launches surface in the obs metrics registry.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..pp import ExecutionSpace, KernelRegistry, KernelStats, MDRangePolicy
from ..utils.units import CP_AIR, GRAVITY, LATENT_HEAT_VAPORIZATION, STEFAN_BOLTZMANN
from .columns import ColumnState, saturation_specific_humidity

__all__ = [
    "ATM_KERNELS",
    "make_atm_registry",
    "radiation_kernel",
    "surface_flux_kernel",
    "convective_kernel",
    "saturation_kernel",
    "condensation_kernel",
    "run_radiation",
    "run_surface_layer",
    "run_convective_adjustment",
    "run_condensation",
]

SOLAR_CONSTANT = 1361.0  # W/m^2


def radiation_kernel(
    idx: np.ndarray,
    gsw: np.ndarray,
    glw: np.ndarray,
    dt_rad: np.ndarray,
    t: np.ndarray,
    q: np.ndarray,
    p: np.ndarray,
    coszr: np.ndarray,
    cloud_fraction: np.ndarray,
    albedo: float,
    sw_absorptivity: float,
    eps_clear: float,
    eps_cloud: float,
    lw_cooling_rate: float,
) -> None:
    """Gray radiation for one chunk of columns (writes gsw/glw/dt_rad)."""
    colq = np.trapezoid(q[idx], p, axis=1) / GRAVITY
    wv_factor = np.clip(colq / 30.0, 0.0, 1.0)

    cz = np.clip(coszr[idx], 0.0, 1.0)
    cf = cloud_fraction[idx]
    transmission = 1.0 - sw_absorptivity - 0.25 * cf
    gsw[idx] = SOLAR_CONSTANT * cz * (1.0 - albedo) * np.clip(transmission, 0.0, 1.0)

    eps = eps_clear + (eps_cloud - eps_clear) * cf
    eps = eps * (0.8 + 0.2 * wv_factor)
    glw[idx] = eps * STEFAN_BOLTZMANN * t[idx, -1] ** 4

    sw_heat = (
        SOLAR_CONSTANT * cz[:, None] * sw_absorptivity * (p / p[-1])[None, :] ** 0.5
    )
    sw_heat = sw_heat / (CP_AIR * 8000.0)  # W/m2 over an ~800 hPa airmass
    lw_cool = lw_cooling_rate * (t[idx] / 288.0) ** 4
    dt_rad[idx] = sw_heat - lw_cool


def surface_flux_kernel(
    idx: np.ndarray,
    du: np.ndarray,
    dv: np.ndarray,
    dt: np.ndarray,
    dq: np.ndarray,
    shflx: np.ndarray,
    lhflx: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    t: np.ndarray,
    q: np.ndarray,
    tskin: np.ndarray,
    p_sfc: float,
    drag_coefficient: float,
    exchange_wind_min: float,
) -> None:
    """Bulk surface-layer fluxes for one chunk of columns."""
    wind = np.sqrt(u[idx, -1] ** 2 + v[idx, -1] ** 2)
    wind = np.maximum(wind, exchange_wind_min)
    rho_cd_w = 1.2 * drag_coefficient * wind

    shflx[idx] = rho_cd_w * CP_AIR * (tskin[idx] - t[idx, -1])
    qsat_skin = saturation_specific_humidity(
        tskin[idx], np.full_like(tskin[idx], p_sfc)
    )
    lhflx[idx] = rho_cd_w * LATENT_HEAT_VAPORIZATION * np.maximum(
        qsat_skin - q[idx, -1], 0.0
    ) * 0.7  # ocean-ish evaporation efficiency

    # Spread the flux over the lowest model layer (~500 m of air).
    layer_mass = 1.2 * 500.0
    du[idx, -1] = -rho_cd_w * u[idx, -1] / layer_mass
    dv[idx, -1] = -rho_cd_w * v[idx, -1] / layer_mass
    dt[idx, -1] = shflx[idx] / (CP_AIR * layer_mass)
    dq[idx, -1] = lhflx[idx] / (LATENT_HEAT_VAPORIZATION * layer_mass)


def convective_kernel(
    idx: np.ndarray,
    dT: np.ndarray,
    dQ: np.ndarray,
    precip: np.ndarray,
    t0: np.ndarray,
    q0: np.ndarray,
    p: np.ndarray,
    dz: np.ndarray,
    dt_s: float,
    critical_lapse: float,
    adjust_sweeps: int,
) -> None:
    """Pairwise convective adjustment for one chunk of columns.

    The sweep loop may exit as soon as *this chunk* is stable: further
    sweeps would add/subtract exact zeros, so the early exit does not
    change the result relative to a global stability test.
    """
    t = t0[idx].copy()
    for _ in range(adjust_sweeps):
        lapse = (t[:, 1:] - t[:, :-1]) / dz[None, :]
        unstable = lapse > critical_lapse
        if not np.any(unstable):
            break
        excess = (lapse - critical_lapse) * dz[None, :]
        adj = 0.25 * np.where(unstable, excess, 0.0)
        # Move heat upward: cool lower level, warm upper level.
        t_new = t.copy()
        t_new[:, 1:] -= adj
        t_new[:, :-1] += adj
        t = t_new

    dT_c = (t - t0[idx]) / dt_s
    dT[idx] = dT_c
    # Moisture: where convection fired, detrain toward 80 % RH.
    fired = np.abs(dT_c).sum(axis=1) > 0
    qsat = saturation_specific_humidity(t, p[None, :])
    q_target = np.minimum(q0[idx], 0.8 * qsat)
    dQ_c = np.where(fired[:, None], (q_target - q0[idx]) / max(dt_s, 1.0), 0.0)
    dQ[idx] = dQ_c
    # Removed moisture rains out (column integral, positive down).
    precip[idx] = np.maximum(-np.trapezoid(dQ_c, p, axis=1) / GRAVITY, 0.0)


def saturation_kernel(
    ci: np.ndarray,
    ki: np.ndarray,
    qsat: np.ndarray,
    t: np.ndarray,
    p: np.ndarray,
) -> None:
    """Tetens saturation humidity on one (columns x levels) tile."""
    sl = np.ix_(ci, ki)
    qsat[sl] = saturation_specific_humidity(t[sl], p[ki][None, :])


def condensation_kernel(
    idx: np.ndarray,
    dT: np.ndarray,
    dQ: np.ndarray,
    precip: np.ndarray,
    cloud: np.ndarray,
    q: np.ndarray,
    qsat: np.ndarray,
    p: np.ndarray,
    condensation_timescale: float,
    cloud_rh_threshold: float,
) -> None:
    """Large-scale condensation + cloud diagnosis for one column chunk."""
    excess = np.maximum(q[idx] - qsat[idx], 0.0)
    rate = excess / condensation_timescale
    dQ_c = -rate
    dQ[idx] = dQ_c
    dT[idx] = (LATENT_HEAT_VAPORIZATION / CP_AIR) * rate
    precip[idx] = np.maximum(-np.trapezoid(dQ_c, p, axis=1) / GRAVITY, 0.0)
    rh = q[idx] / np.maximum(qsat[idx], 1e-10)
    cloudy = np.clip(
        (rh - cloud_rh_threshold) / (1.0 - cloud_rh_threshold), 0.0, 1.0
    )
    # Total cloud fraction: random-overlap of layer clouds.
    cloud[idx] = 1.0 - np.prod(1.0 - 0.5 * cloudy, axis=1)


# -- per-context registry factory (§5.3 hash registration) -----------------


def make_atm_registry(name: str = "atm") -> KernelRegistry:
    """A fresh registry with every atmosphere kernel pre-registered.

    Each model instance (each ensemble member) gets its own registry via
    its :class:`~repro.esm.component.ComponentContext`, so per-kernel
    launch bookkeeping never aliases across concurrent experiments.
    """
    reg = KernelRegistry(name=name)
    for fn in (
        radiation_kernel, surface_flux_kernel, convective_kernel,
        saturation_kernel, condensation_kernel,
    ):
        reg.register(fn)
    return reg


#: Backward-compatible module-level registry: the default used by the
#: ``run_*`` wrappers when no per-context registry is passed.
ATM_KERNELS = make_atm_registry()


# -- host-callable wrappers (dispatch through the registry) ----------------


def run_radiation(
    space: ExecutionSpace,
    state: ColumnState,
    cloud_fraction: np.ndarray,
    albedo: float,
    sw_absorptivity: float,
    eps_clear: float,
    eps_cloud: float,
    lw_cooling_rate: float,
    stats: Optional[KernelStats] = None,
    registry: Optional[KernelRegistry] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(gsw, glw, dT_rad) via the portable radiation kernel."""
    reg = registry if registry is not None else ATM_KERNELS
    gsw = np.zeros(state.ncol)
    glw = np.zeros(state.ncol)
    dt_rad = np.zeros_like(state.t)
    handle = reg.register(radiation_kernel)
    reg.launch(
        space, handle, state.ncol,
        gsw, glw, dt_rad, state.t, state.q, state.p, state.coszr,
        cloud_fraction, albedo, sw_absorptivity, eps_clear, eps_cloud,
        lw_cooling_rate, stats=stats,
    )
    return gsw, glw, dt_rad


def run_surface_layer(
    space: ExecutionSpace,
    state: ColumnState,
    drag_coefficient: float,
    exchange_wind_min: float,
    stats: Optional[KernelStats] = None,
    registry: Optional[KernelRegistry] = None,
) -> Tuple[np.ndarray, ...]:
    """(dU, dV, dT, dQ, shflx, lhflx) via the portable surface kernel."""
    reg = registry if registry is not None else ATM_KERNELS
    du = np.zeros_like(state.u)
    dv = np.zeros_like(state.v)
    dt = np.zeros_like(state.t)
    dq = np.zeros_like(state.q)
    shflx = np.zeros(state.ncol)
    lhflx = np.zeros(state.ncol)
    handle = reg.register(surface_flux_kernel)
    reg.launch(
        space, handle, state.ncol,
        du, dv, dt, dq, shflx, lhflx,
        state.u, state.v, state.t, state.q, state.tskin,
        float(state.p[-1]), drag_coefficient, exchange_wind_min, stats=stats,
    )
    return du, dv, dt, dq, shflx, lhflx


def run_convective_adjustment(
    space: ExecutionSpace,
    state: ColumnState,
    dt_s: float,
    critical_lapse: float,
    adjust_sweeps: int,
    stats: Optional[KernelStats] = None,
    registry: Optional[KernelRegistry] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(dT, dQ, precip) via the portable convective-adjustment kernel."""
    reg = registry if registry is not None else ATM_KERNELS
    p = state.p
    z = 7500.0 * np.log(p[-1] / np.maximum(p, 1.0))  # heights, sfc-relative
    dz = z[:-1] - z[1:]  # positive: level k is above k+1
    dT = np.zeros_like(state.t)
    dQ = np.zeros_like(state.q)
    precip = np.zeros(state.ncol)
    handle = reg.register(convective_kernel)
    reg.launch(
        space, handle, state.ncol,
        dT, dQ, precip, state.t, state.q, p, dz,
        dt_s, critical_lapse, adjust_sweeps, stats=stats,
    )
    return dT, dQ, precip


def run_condensation(
    space: ExecutionSpace,
    state: ColumnState,
    condensation_timescale: float,
    cloud_rh_threshold: float,
    stats: Optional[KernelStats] = None,
    tile: Optional[Tuple[int, int]] = None,
    registry: Optional[KernelRegistry] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(dT, dQ, precip, cloud) via the tiled saturation + condensation
    kernels.  Saturation humidity runs as an MDRange over (ncol, nlev) —
    the two-dimensional tiled launch — then the per-column condensation
    chunk kernel consumes it."""
    reg = registry if registry is not None else ATM_KERNELS
    qsat = np.zeros_like(state.q)
    policy = MDRangePolicy((state.ncol, state.nlev), tile=tile)
    reg.launch(
        space, reg.register(saturation_kernel), policy,
        qsat, state.t, state.p, stats=stats,
    )
    dT = np.zeros_like(state.t)
    dQ = np.zeros_like(state.q)
    precip = np.zeros(state.ncol)
    cloud = np.zeros(state.ncol)
    reg.launch(
        space, reg.register(condensation_kernel), state.ncol,
        dT, dQ, precip, cloud, state.q, qsat, state.p,
        condensation_timescale, cloud_rh_threshold, stats=stats,
    )
    return dT, dQ, precip, cloud
