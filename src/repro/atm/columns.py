"""Vertical column state and reference profiles for the physics suites.

The physics (conventional and AI) operate on columns of (U, V, T, Q, P)
over ``nlev`` levels — the paper's AI tendency module input set.  This
module holds the column container, the pressure coordinate, reference
thermodynamic profiles, and saturation humidity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "pressure_levels",
    "reference_profiles",
    "saturation_specific_humidity",
    "ColumnState",
]

P_SURFACE = 101325.0   # Pa
P_TOP = 2000.0         # Pa


def pressure_levels(nlev: int = 30) -> np.ndarray:
    """Mid-level pressures (Pa), top to bottom, hybrid-like spacing that
    concentrates levels near the surface."""
    if nlev < 2:
        raise ValueError("need at least 2 levels")
    s = np.linspace(0.0, 1.0, nlev)
    sigma = s**1.6  # more levels near the ground
    return P_TOP + (P_SURFACE - P_TOP) * sigma


def reference_profiles(p: np.ndarray, t_surface: float = 288.0) -> Tuple[np.ndarray, np.ndarray]:
    """(T_ref, Q_ref) for a moist-adiabatic-ish standard atmosphere.

    T follows a 6.5 K/km lapse capped by an isothermal stratosphere;
    Q decays with pressure like observed moisture.
    """
    p = np.asarray(p, dtype=np.float64)
    # Hypsometric-ish height from pressure.
    z = 7500.0 * np.log(P_SURFACE / np.maximum(p, 1.0))
    t = np.maximum(t_surface - 6.5e-3 * z, 210.0)
    q = 0.015 * (p / P_SURFACE) ** 3
    return t, q


def saturation_specific_humidity(t: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Saturation specific humidity from Tetens' formula (kg/kg)."""
    t = np.asarray(t, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    es = 610.78 * np.exp(17.27 * (t - 273.15) / np.maximum(t - 35.86, 1.0))
    es = np.minimum(es, 0.5 * p)  # keep the formula sane at extremes
    return 0.622 * es / np.maximum(p - 0.378 * es, 1.0)


@dataclass
class ColumnState:
    """Physics state for a batch of columns; arrays are (ncol, nlev)."""

    u: np.ndarray
    v: np.ndarray
    t: np.ndarray
    q: np.ndarray
    p: np.ndarray          # (nlev,) shared pressure coordinate
    tskin: np.ndarray      # (ncol,) surface skin temperature
    coszr: np.ndarray      # (ncol,) cosine of solar zenith angle

    def __post_init__(self) -> None:
        ncol, nlev = self.t.shape
        for name in ("u", "v", "q"):
            if getattr(self, name).shape != (ncol, nlev):
                raise ValueError(f"{name} must be (ncol, nlev)")
        if self.p.shape != (nlev,):
            raise ValueError("p must be (nlev,)")
        if self.tskin.shape != (ncol,) or self.coszr.shape != (ncol,):
            raise ValueError("tskin/coszr must be (ncol,)")

    @property
    def ncol(self) -> int:
        return self.t.shape[0]

    @property
    def nlev(self) -> int:
        return self.t.shape[1]

    def copy(self) -> "ColumnState":
        return ColumnState(
            self.u.copy(), self.v.copy(), self.t.copy(), self.q.copy(),
            self.p.copy(), self.tskin.copy(), self.coszr.copy(),
        )

    def as_channels(self) -> np.ndarray:
        """(ncol, 5, nlev) array in the AI suite's input layout (U,V,T,Q,P)."""
        p_bcast = np.broadcast_to(self.p, self.t.shape)
        return np.stack([self.u, self.v, self.t, self.q, p_bcast], axis=1)

    @staticmethod
    def concat(states: "Sequence[ColumnState]") -> "ColumnState":
        """Stack several column batches into one along the column axis.

        The cross-member batched-physics gather: all batches must share
        the same pressure coordinate (same ``nlev`` grid) so one suite
        call can serve them; the per-batch slices of the result are
        bitwise-identical to the inputs.
        """
        if not states:
            raise ValueError("concat needs at least one ColumnState")
        p = states[0].p
        for s in states[1:]:
            if not np.array_equal(s.p, p):
                raise ValueError("all ColumnStates must share the pressure coordinate")
        return ColumnState(
            u=np.concatenate([s.u for s in states], axis=0),
            v=np.concatenate([s.v for s in states], axis=0),
            t=np.concatenate([s.t for s in states], axis=0),
            q=np.concatenate([s.q for s in states], axis=0),
            p=p,
            tskin=np.concatenate([s.tskin for s in states], axis=0),
            coszr=np.concatenate([s.coszr for s in states], axis=0),
        )
