"""Semi-implicit shallow-water stepping (the paper's 'Type of method used:
Semi-implicit').

Explicit stepping of the SWE is limited by the external gravity-wave CFL
(c = sqrt(gH) ~ 170 m/s at TC2 depths); km-scale models live or die by
treating those waves implicitly.  This module implements the classical
theta-method split:

* gravity terms (the -g grad(h) / -H div(u) pair, linearized about the
  mean depth H) are advanced with a trapezoidal (theta) average;
* everything else (Coriolis/PV, kinetic energy, nonlinear flux
  corrections) stays explicit;
* eliminating u^{n+1} yields a **Helmholtz problem** for h^{n+1},

      (I - (theta dt)^2 g H  div grad) h' = RHS,

  solved matrix-free with conjugate gradients using the same TRSK
  ``divergence``/``gradient`` operators (the operator is symmetric
  positive definite in the cell-area inner product because div and -grad
  are adjoints — the property ``tests/test_grids_trsk.py`` pins).

The payoff tested in ``tests/test_atm_semi_implicit.py``: stable at
several times the explicit CFL limit with mass conserved to round-off,
converging to the explicit solution as dt -> 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..grids import trsk
from ..grids.icos import IcosahedralGrid
from ..utils.units import GRAVITY
from .dycore import ShallowWaterDycore, SWEState

__all__ = ["SemiImplicitDycore", "helmholtz_solve"]


def helmholtz_solve(
    grid: IcosahedralGrid,
    coefficient: float,
    rhs: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 2000,
) -> Tuple[np.ndarray, int]:
    """Solve ``(I - coefficient * div grad) x = rhs`` by matrix-free CG.

    ``coefficient`` is ``(theta dt)^2 g H`` (m^2); the operator is SPD in
    the area-weighted inner product, so CG is the right Krylov method.
    Returns (solution, iterations).
    """
    if coefficient < 0:
        raise ValueError("coefficient must be >= 0")

    def apply_op(x: np.ndarray) -> np.ndarray:
        return x - coefficient * trsk.divergence(grid, trsk.gradient(grid, x))

    area = grid.area_cell

    def dot(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.sum(area * a * b))

    x = rhs.copy()
    r = rhs - apply_op(x)
    p = r.copy()
    rr = dot(r, r)
    rhs_norm = math.sqrt(max(dot(rhs, rhs), 1e-300))
    n_iter = 0
    while math.sqrt(rr) / rhs_norm > tol and n_iter < max_iter:
        ap = apply_op(p)
        alpha = rr / max(dot(p, ap), 1e-300)
        x += alpha * p
        r -= alpha * ap
        rr_new = dot(r, r)
        p = r + (rr_new / max(rr, 1e-300)) * p
        rr = rr_new
        n_iter += 1
    return x, n_iter


@dataclass
class SemiImplicitDycore:
    """Theta-method semi-implicit stepper sharing the explicit dycore's
    spatial operators (and therefore its conservation properties).

    Parameters
    ----------
    grid:
        The icosahedral mesh.
    theta:
        Implicitness (0.5 = trapezoidal, neutrally stable and 2nd order;
        >0.5 damps gravity waves — production models run ~0.55-0.6).
    mean_depth:
        Linearization depth H (defaults to the running mean of h).
    """

    grid: IcosahedralGrid
    theta: float = 0.55
    mean_depth: Optional[float] = None
    diffusion: float = 0.0
    cg_tol: float = 1e-12
    last_cg_iterations: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.5 <= self.theta <= 1.0:
            raise ValueError("theta must be in [0.5, 1] for stability")
        self._explicit = ShallowWaterDycore(self.grid, diffusion=self.diffusion)

    def step(self, state: SWEState, dt: float) -> SWEState:
        """One semi-implicit step."""
        g = self.grid
        theta = self.theta
        h, u = state.h, state.u
        big_h = self.mean_depth if self.mean_depth is not None else float(h.mean())

        # Explicit (slow) tendencies: full RHS minus the linear gravity pair.
        full = self._explicit.tendencies(state)
        lin_dh = -big_h * trsk.divergence(g, u)
        lin_du = -GRAVITY * trsk.gradient(g, h)
        slow_dh = full.h - lin_dh
        slow_du = full.u - lin_du

        # Theta-method elimination:
        #   h' = h + dt slow_dh - dt H div((1-t) u + t u')
        #   u' = u + dt slow_du - dt g grad((1-t) h + t h')
        # Substitute u' into the h' equation -> Helmholtz for h'.
        u_star = u + dt * slow_du - dt * GRAVITY * (1.0 - theta) * trsk.gradient(g, h)
        rhs = (
            h
            + dt * slow_dh
            - dt * big_h * trsk.divergence(g, (1.0 - theta) * u + theta * u_star)
        )
        coeff = (theta * dt) ** 2 * GRAVITY * big_h
        h_new, self.last_cg_iterations = helmholtz_solve(
            g, coeff, rhs, tol=self.cg_tol
        )
        u_new = u_star - dt * GRAVITY * theta * trsk.gradient(g, h_new)
        return SWEState(h=h_new, u=u_new)

    def max_stable_dt(self, state: SWEState, cfl: float = 0.5) -> float:
        """Advective CFL only — the gravity waves are implicit.

        (The explicit stepper's limit is ``cfl * dx / (c + |u|)``; here
        only ``|u|`` remains, a ~5-10x larger step at TC2 speeds.)
        """
        umax = float(np.abs(state.u).max())
        return cfl * float(self.grid.de.min()) / max(umax, 1e-12)

    # Delegate the invariants to the shared spatial discretization.
    def total_mass(self, state: SWEState) -> float:
        return self._explicit.total_mass(state)

    def total_energy(self, state: SWEState) -> float:
        return self._explicit.total_energy(state)
