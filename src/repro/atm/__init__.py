"""GRIST-like atmosphere component: TRSK shallow-water dycore, column
physics (conventional + AI suites), and the CPL7 component contract."""

from .ai_physics import (
    AIPhysicsSuite,
    generate_training_archive,
    harvest_archive_from_model,
    synthetic_columns,
)
from .columns import (
    ColumnState,
    pressure_levels,
    reference_profiles,
    saturation_specific_humidity,
)
from .dycore import (
    ShallowWaterDycore,
    SWEState,
    isolated_mountain,
    williamson_tc2,
)
from .model import GristConfig, GristModel
from .semi_implicit import SemiImplicitDycore, helmholtz_solve
from .physics import ConventionalPhysics, PhysicsParams, PhysicsTendencies

__all__ = [
    "SWEState",
    "ShallowWaterDycore",
    "williamson_tc2",
    "isolated_mountain",
    "ColumnState",
    "pressure_levels",
    "reference_profiles",
    "saturation_specific_humidity",
    "ConventionalPhysics",
    "PhysicsParams",
    "PhysicsTendencies",
    "AIPhysicsSuite",
    "generate_training_archive",
    "harvest_archive_from_model",
    "synthetic_columns",
    "GristConfig",
    "GristModel",
    "SemiImplicitDycore",
    "helmholtz_solve",
]
