"""GRIST-like atmosphere model: dycore + tracer transport + column physics
behind the CPL7 component contract (init / run / finalize, import / export).

Structure mirrors the paper's §5.1.1 and §6.1:

* timestep hierarchy **dycore : tracer : model(physics) = 8 s : 30 s :
  120 s** — kept as the exact substep ratio (15 dycore and 4 tracer
  substeps per model step) with the absolute step scaled to the grid's CFL
  limit;
* a physics suite that is either the conventional parameterizations or the
  **AI suite**, exchanged through the same physics-dynamics coupling
  interface ("this suite gets the input variables from the dynamical core
  and returns full physical variables back");
* ``import_state`` / ``export_state`` carrying exactly the boundary fields
  the coupler moves (SST and ice fraction in; wind stress, heat fluxes,
  radiation, precipitation out);
* the land surface model is driven *directly* (bypassing the coupler), as
  in the paper: "GRIST and the land surface model directly exchange data".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol

import numpy as np

from ..grids import trsk
from ..grids.icos import IcosahedralGrid
from ..utils.timers import TimerRegistry
from ..utils.units import RHO_AIR
from .columns import ColumnState, pressure_levels, reference_profiles
from .dycore import ShallowWaterDycore, williamson_tc2
from .physics import ConventionalPhysics, PhysicsTendencies

__all__ = ["GristConfig", "GristModel"]

DYCORE_SUBSTEPS = 15  # 120 s / 8 s
TRACER_SUBSTEPS = 4   # 120 s / 30 s


class PhysicsSuite(Protocol):
    def compute(self, state: ColumnState, dt_s: float) -> PhysicsTendencies: ...


@dataclass
class GristConfig:
    """Configuration for one GRIST instance."""

    level: int = 4
    nlev: int = 30
    cfl: float = 0.35
    diffusion: float = 1.0e5
    start_time: float = 0.0
    heating_feedback: float = 0.02  # column heating -> thickness coupling
    # Cap on the dycore substep: keeps the model (physics) step at most
    # ~1 h on coarse test grids, where the gravity-wave CFL alone would
    # allow physics steps too long for the explicit surface-drag terms.
    max_dt_dycore: float = 240.0
    # Time scheme: "rk4" (explicit) or "semi_implicit" (theta-method with
    # the CG Helmholtz solve — the paper's method class, §2).  The
    # semi-implicit path may take gravity-wave-free steps up to 5x the
    # explicit CFL (still bounded by max_dt_dycore).
    time_scheme: str = "rk4"


class GristModel:
    """The atmosphere component.

    Lifecycle: ``init()`` -> ``run(n)``/``step()`` -> ``finalize()``;
    boundary exchange through ``import_state`` / ``export_state``.
    """

    name = "atm"

    def __init__(
        self,
        config: GristConfig | None = None,
        physics: Optional[PhysicsSuite] = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        self.config = config if config is not None else GristConfig()
        self.physics: PhysicsSuite = physics if physics is not None else ConventionalPhysics()
        self.timers = timers if timers is not None else TimerRegistry()
        self._initialized = False
        self._finalized = False

    # -- CPL7 contract ---------------------------------------------------------

    def init(self) -> None:
        """Build grid, dycore, column state, and the model clock."""
        cfg = self.config
        if cfg.time_scheme not in ("rk4", "semi_implicit"):
            raise ValueError("time_scheme must be 'rk4' or 'semi_implicit'")
        self.grid = IcosahedralGrid.build(cfg.level)
        self.swe = williamson_tc2(self.grid)
        self.dycore = ShallowWaterDycore(self.grid, diffusion=cfg.diffusion)
        explicit_dt = self.dycore.max_stable_dt(self.swe, cfl=cfg.cfl)
        if cfg.time_scheme == "semi_implicit":
            from .semi_implicit import SemiImplicitDycore

            self._si = SemiImplicitDycore(self.grid, diffusion=cfg.diffusion)
            # Gravity waves are implicit: allow up to 5x the explicit step.
            self.dt_dycore = min(5.0 * explicit_dt, cfg.max_dt_dycore)
        else:
            self._si = None
            self.dt_dycore = min(explicit_dt, cfg.max_dt_dycore)
        self.dt_model = DYCORE_SUBSTEPS * self.dt_dycore
        self.dt_tracer = self.dt_model / TRACER_SUBSTEPS

        nc = self.grid.n_cells
        self.p = pressure_levels(cfg.nlev)
        t_ref, q_ref = reference_profiles(self.p)
        h_anom = (self.swe.h - self.swe.h.mean()) / self.swe.h.mean()
        self.t_col = t_ref[None, :] + 30.0 * h_anom[:, None]
        self.q_col = np.tile(q_ref, (nc, 1)) * (1.0 + h_anom[:, None])
        self.tracer = np.ones(nc)  # advected column moisture scaling
        self.tskin = self.t_col[:, -1] + 1.0
        self.ice_fraction = np.zeros(nc)

        self.time = cfg.start_time
        self.n_steps = 0
        # Diagnostics exported to the coupler / written by benches.
        self.diag: Dict[str, np.ndarray] = {}
        self._initialized = True

    def finalize(self) -> Dict[str, float]:
        """Release heavy state; return summary statistics."""
        if not self._initialized:
            raise RuntimeError("finalize before init")
        summary = {
            "steps": float(self.n_steps),
            "simulated_seconds": self.time - self.config.start_time,
            "mass": self.dycore.total_mass(self.swe),
        }
        self._finalized = True
        return summary

    # -- Component protocol (shared context + uniform coupling surface) -----------

    def set_context(self, ctx) -> None:
        """Bind the shared ComponentContext: kernel dispatch moves onto the
        context's execution space and the atm kernels join the shared
        hash registry."""
        self._ctx = ctx
        if hasattr(self.physics, "bind"):
            self.physics.bind(ctx.space, ctx.metrics, registry=ctx.kernels)
        from . import kernels as _k

        for fn in (
            _k.radiation_kernel, _k.surface_flux_kernel, _k.convective_kernel,
            _k.saturation_kernel, _k.condensation_kernel,
        ):
            ctx.kernels.register(fn)

    def pre_coupling(self, imports: Dict[str, np.ndarray]) -> None:
        self.import_state(imports)

    def post_coupling(self) -> Dict[str, np.ndarray]:
        return self.export_state()

    def state(self) -> Dict[str, np.ndarray]:
        """The prognostic state (what restarts save and the precision
        policy round-trips)."""
        self._check_alive()
        return {
            "h": self.swe.h, "u": self.swe.u,
            "t_col": self.t_col, "q_col": self.q_col,
            "tracer": self.tracer, "tskin": self.tskin,
        }

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        self._check_alive()
        if "h" in state:
            self.swe.h = state["h"]
        if "u" in state:
            self.swe.u = state["u"]
        for key in ("t_col", "q_col", "tracer", "tskin"):
            if key in state:
                setattr(self, key, state[key])

    # -- boundary exchange -------------------------------------------------------

    def import_state(self, fields: Dict[str, np.ndarray]) -> None:
        """Receive boundary data (ocean/ice -> atmosphere)."""
        self._check_alive()
        if "sst" in fields:
            sst = np.asarray(fields["sst"])
            if sst.shape != self.tskin.shape:
                raise ValueError("sst must be on atmosphere cells (remap first)")
            # Ocean skin temperature relaxes to the imported SST.
            self.tskin = sst.copy()
        if "ice_fraction" in fields:
            self.ice_fraction = np.clip(np.asarray(fields["ice_fraction"]), 0.0, 1.0)

    def export_state(self) -> Dict[str, np.ndarray]:
        """Provide boundary data (atmosphere -> coupler)."""
        self._check_alive()
        u_cell, v_cell = self._cell_winds()
        wind = np.sqrt(u_cell**2 + v_cell**2)
        cd = 1.3e-3
        taux = RHO_AIR * cd * wind * u_cell
        tauy = RHO_AIR * cd * wind * v_cell
        out = {
            "taux": taux,
            "tauy": tauy,
            "t_bot": self.t_col[:, -1],
            "q_bot": self.q_col[:, -1],
            "u_bot": u_cell,
            "v_bot": v_cell,
        }
        for key in ("gsw", "glw", "precip", "shflx", "lhflx", "cloud_fraction"):
            if key in self.diag:
                out[key] = self.diag[key]
        return out

    # -- stepping -----------------------------------------------------------------

    def step(self, dt: Optional[float] = None) -> None:
        """One model (physics) step = 15 dycore + 4 tracer substeps + physics.

        With an explicit ``dt`` (the Component-protocol form) the model
        advances ``round(dt / dt_model)`` internal steps — the coupled
        driver passes one coupling interval."""
        if dt is not None:
            self.run(max(1, int(round(dt / self.dt_model))))
            return
        self._check_alive()
        with self.timers.timed("atm_run"):
            self._dynamics_substeps()
            with self.timers.timed("atm_physics"):
                self._physics_step(self.dt_model)
        self.time += self.dt_model
        self.n_steps += 1

    def begin_step(self) -> ColumnState:
        """First half of one model step, for lockstep ensemble drivers:
        advance dynamics (dycore + tracer substeps) and return the physics
        input columns.  Pair every call with :meth:`complete_step`; the
        two halves compose bitwise-identically to :meth:`step` when the
        tendencies come from the same physics suite."""
        self._check_alive()
        with self.timers.timed("atm_run"):
            self._dynamics_substeps()
            return self.current_columns()

    def complete_step(self, tend: PhysicsTendencies) -> None:
        """Second half of one model step: apply externally computed physics
        tendencies (e.g. a cross-member batched slice) and tick the clock."""
        self._check_alive()
        with self.timers.timed("atm_run"):
            with self.timers.timed("atm_physics"):
                self._apply_physics(tend, self.dt_model)
        self.time += self.dt_model
        self.n_steps += 1

    def run(self, n_steps: int) -> None:
        for _ in range(n_steps):
            self.step()

    # -- restart I/O (subfile format, §5.2.5) -------------------------------------------

    def save_restart(self, directory) -> None:
        """Write the prognostic state as a subfile restart set."""
        self._check_alive()
        from ..io.restart import save_restart

        save_restart(
            directory,
            fields={
                "h": self.swe.h, "u": self.swe.u,
                "t_col": self.t_col, "q_col": self.q_col,
                "tracer": self.tracer, "tskin": self.tskin,
                "ice_fraction": self.ice_fraction,
            },
            scalars={"time": self.time, "n_steps": float(self.n_steps)},
        )

    def load_restart(self, directory) -> None:
        """Restore the prognostic state bit-exactly from a restart set."""
        self._check_alive()
        from ..io.restart import load_restart

        fields, scalars = load_restart(directory)
        self.swe.h = fields["h"]
        self.swe.u = fields["u"]
        self.t_col = fields["t_col"]
        self.q_col = fields["q_col"]
        self.tracer = fields["tracer"]
        self.tskin = fields["tskin"]
        self.ice_fraction = fields["ice_fraction"]
        self.time = scalars["time"]
        self.n_steps = int(scalars["n_steps"])

    # -- internals ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if not self._initialized:
            raise RuntimeError("model not initialized (call init())")
        if self._finalized:
            raise RuntimeError("model already finalized")

    def _cell_winds(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct (east, north) cell winds from edge normals:
        V_c = (1/A_c) sum_e le u_e (x_e - x_c) projected on the local basis."""
        g = self.grid
        vec = np.zeros((g.n_cells, 3))
        # Each edge contributes its flux moment to both cells.
        np.add.at(vec, g.edge_cells[:, 0], (g.le * self.swe.u)[:, None] * (g.xyz_edge - g.xyz_cell[g.edge_cells[:, 0]]))
        np.add.at(vec, g.edge_cells[:, 1], -(g.le * self.swe.u)[:, None] * (g.xyz_edge - g.xyz_cell[g.edge_cells[:, 1]]))
        vec = vec * (g.radius / g.area_cell[:, None])
        from ..grids.sphere import tangent_basis

        east, north = tangent_basis(g.xyz_cell)
        return np.sum(vec * east, axis=-1), np.sum(vec * north, axis=-1)

    def _advect_tracer(self, dt: float) -> None:
        """First-order upwind, flux-form, mass-conserving tracer step."""
        g = self.grid
        h_e = trsk.cell_to_edge(g, self.swe.h)
        upwind = np.where(
            self.swe.u > 0,
            self.tracer[g.edge_cells[:, 0]],
            self.tracer[g.edge_cells[:, 1]],
        )
        flux = g.le * self.swe.u * h_e * upwind
        dmass = np.zeros(g.n_cells)
        np.add.at(dmass, g.edge_cells[:, 0], -flux)
        np.add.at(dmass, g.edge_cells[:, 1], flux)
        mass = self.tracer * self.swe.h * g.area_cell
        mass = mass + dt * dmass
        # h has moved too within the dycore substep bundle; normalize by the
        # *current* h to keep the tracer a mixing ratio.
        self.tracer = mass / (self.swe.h * g.area_cell)

    def _coszr(self) -> np.ndarray:
        """Cosine of solar zenith angle from lon/lat and model time."""
        g = self.grid
        day_phase = 2.0 * math.pi * (self.time % 86400.0) / 86400.0
        year_phase = 2.0 * math.pi * (self.time % (365.0 * 86400.0)) / (365.0 * 86400.0)
        declination = 0.41 * math.sin(year_phase)
        hour_angle = g.lon_cell + day_phase
        return np.clip(
            np.sin(g.lat_cell) * math.sin(declination)
            + np.cos(g.lat_cell) * math.cos(declination) * np.cos(hour_angle),
            0.0,
            1.0,
        )

    def current_columns(self) -> ColumnState:
        """The physics-suite input columns for the current model state —
        exactly what the physics-dynamics coupling interface hands to the
        suite (and what AI-training archives harvest)."""
        u_cell, v_cell = self._cell_winds()
        shape = (1.0 - (self.p / self.p[-1]) ** 2)[None, :]
        return ColumnState(
            u=u_cell[:, None] * (1.0 + shape),
            v=v_cell[:, None] * (1.0 + shape),
            t=self.t_col.copy(),
            q=np.clip(self.q_col * self.tracer[:, None], 0.0, 0.04),
            p=self.p,
            tskin=self.tskin.copy(),
            coszr=self._coszr(),
        )

    def _dynamics_substeps(self) -> None:
        """The dynamics half of one model step (dycore + tracer bundles)."""
        with self.timers.timed("atm_dycore"):
            for _ in range(DYCORE_SUBSTEPS):
                if self._si is not None:
                    self.swe = self._si.step(self.swe, self.dt_dycore)
                else:
                    self.swe = self.dycore.step_rk4(self.swe, self.dt_dycore)
        with self.timers.timed("atm_tracer"):
            for _ in range(TRACER_SUBSTEPS):
                self._advect_tracer(self.dt_tracer)

    def _physics_step(self, dt: float) -> None:
        cols = self.current_columns()
        tend = self.physics.compute(cols, dt)
        self._apply_physics(tend, dt)

    def _apply_physics(self, tend: PhysicsTendencies, dt: float) -> None:
        g = self.grid
        self.t_col = self.t_col + dt * tend.dt
        self.q_col = np.clip(self.q_col + dt * tend.dq, 0.0, 0.04)

        # Physics-dynamics coupling: column heating expands/contracts the
        # fluid thickness (hypsometric feedback), and surface momentum
        # tendencies project onto the edges.
        heating = tend.dt.mean(axis=1)
        self.swe.h = self.swe.h * (
            1.0 + self.config.heating_feedback * dt * heating / np.maximum(self.t_col.mean(axis=1), 100.0)
        )
        du_cell = tend.du[:, -1]
        dv_cell = tend.dv[:, -1]
        from ..grids.sphere import tangent_basis

        east, north = tangent_basis(g.xyz_cell)
        vec = du_cell[:, None] * east + dv_cell[:, None] * north
        vec_e = 0.5 * (vec[g.edge_cells[:, 0]] + vec[g.edge_cells[:, 1]])
        self.swe.u = self.swe.u + dt * np.sum(vec_e * g.normal, axis=-1)

        # Land skin temperature responds to radiation where no SST is
        # imported (simple prognostic; the land model refines this).
        self.diag = {
            "gsw": tend.gsw,
            "glw": tend.glw,
            "precip": tend.precip,
            "shflx": tend.shflx,
            "lhflx": tend.lhflx,
            "cloud_fraction": tend.cloud_fraction,
        }
