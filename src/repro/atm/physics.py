"""The conventional physics parameterization suite.

Four schemes, each a vectorized column parameterization of the kind the AI
suite replaces (§5.2.1): gray-atmosphere radiation (producing the surface
fluxes ``gsw``/``glw`` and a heating profile), a bulk surface layer,
dry/moist convective adjustment, and large-scale condensation.  The suite
returns (dU, dV, dT, dQ) tendencies plus the diagnostics (precipitation,
cloud fraction, surface fluxes) the coupler and the land model consume.

The suite is deliberately branch- and iteration-heavy relative to the AI
suite's dense tensor kernels — that cost asymmetry is the basis of the
paper's "computational gains by unifying most operations into highly
efficient tensor kernels" claim, measured in ``benchmarks/bench_ai_physics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..utils.units import CP_AIR, GRAVITY, LATENT_HEAT_VAPORIZATION, STEFAN_BOLTZMANN
from .columns import ColumnState, saturation_specific_humidity

__all__ = ["PhysicsTendencies", "PhysicsParams", "ConventionalPhysics"]

SOLAR_CONSTANT = 1361.0  # W/m^2


@dataclass
class PhysicsTendencies:
    """Output of one physics step: tendencies (per second) + diagnostics."""

    du: np.ndarray           # (ncol, nlev) m/s^2
    dv: np.ndarray
    dt: np.ndarray           # K/s
    dq: np.ndarray           # kg/kg/s
    gsw: np.ndarray          # (ncol,) surface downward shortwave W/m^2
    glw: np.ndarray          # (ncol,) surface downward longwave W/m^2
    precip: np.ndarray       # (ncol,) kg/m^2/s
    cloud_fraction: np.ndarray  # (ncol,) diagnosed total cloud fraction
    shflx: np.ndarray        # (ncol,) surface sensible heat flux W/m^2
    lhflx: np.ndarray        # (ncol,) surface latent heat flux W/m^2


@dataclass(frozen=True)
class PhysicsParams:
    """Tunable coefficients of the conventional suite."""

    albedo: float = 0.3
    sw_absorptivity: float = 0.12      # column shortwave absorption share
    lw_emissivity_clear: float = 0.70
    lw_emissivity_cloud: float = 0.95
    lw_cooling_rate: float = 1.6e-5    # K/s radiative cooling scale
    drag_coefficient: float = 1.3e-3
    exchange_wind_min: float = 1.0     # m/s gustiness floor
    critical_lapse: float = 7.0e-3     # K/m convective threshold
    adjust_sweeps: int = 6
    condensation_timescale: float = 1800.0  # s
    cloud_rh_threshold: float = 0.8
    # K-profile boundary-layer diffusion: strong near the surface (where
    # the surface fluxes stir), decaying to a free-troposphere floor.
    pbl_kappa_surface: float = 10.0    # m^2/s
    pbl_kappa_free: float = 0.1        # m^2/s
    pbl_depth_fraction: float = 0.25   # share of levels in the PBL


class ConventionalPhysics:
    """The conventional suite; call :meth:`compute` on a column batch."""

    def __init__(self, params: PhysicsParams | None = None) -> None:
        self.params = params if params is not None else PhysicsParams()

    # -- individual schemes -------------------------------------------------

    def radiation(
        self, state: ColumnState, cloud_fraction: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gray radiation: (gsw, glw, dT_rad)."""
        prm = self.params
        p = state.p
        # Column water vapor path weights the gray-body emissivity.
        colq = np.trapezoid(state.q, p, axis=1) / GRAVITY
        wv_factor = np.clip(colq / 30.0, 0.0, 1.0)

        coszr = np.clip(state.coszr, 0.0, 1.0)
        transmission = 1.0 - prm.sw_absorptivity - 0.25 * cloud_fraction
        gsw = SOLAR_CONSTANT * coszr * (1.0 - prm.albedo) * np.clip(transmission, 0.0, 1.0)

        eps = (
            prm.lw_emissivity_clear
            + (prm.lw_emissivity_cloud - prm.lw_emissivity_clear) * cloud_fraction
        )
        eps = eps * (0.8 + 0.2 * wv_factor)
        t_low = state.t[:, -1]
        glw = eps * STEFAN_BOLTZMANN * t_low**4

        # Heating profile: SW absorption aloft, LW cooling weighted to
        # the emission levels (mid troposphere).
        sw_heat = (
            SOLAR_CONSTANT
            * coszr[:, None]
            * prm.sw_absorptivity
            * (p / p[-1])[None, :] ** 0.5
        )
        sw_heat = sw_heat / (CP_AIR * 8000.0)  # W/m2 over an ~800 hPa airmass
        lw_cool = prm.lw_cooling_rate * (state.t / 288.0) ** 4
        dt_rad = sw_heat - lw_cool
        return gsw, glw, dt_rad

    def surface_layer(
        self, state: ColumnState
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bulk fluxes: (dU, dV, dT, dQ tendencies at the lowest level plus
        sensible/latent fluxes)."""
        prm = self.params
        wind = np.sqrt(state.u[:, -1] ** 2 + state.v[:, -1] ** 2)
        wind = np.maximum(wind, prm.exchange_wind_min)
        rho_cd_w = 1.2 * prm.drag_coefficient * wind

        shflx = rho_cd_w * CP_AIR * (state.tskin - state.t[:, -1])
        qsat_skin = saturation_specific_humidity(state.tskin, np.full_like(state.tskin, state.p[-1]))
        lhflx = rho_cd_w * LATENT_HEAT_VAPORIZATION * np.maximum(
            qsat_skin - state.q[:, -1], 0.0
        ) * 0.7  # ocean-ish evaporation efficiency

        # Spread the flux over the lowest model layer (~500 m of air).
        layer_mass = 1.2 * 500.0
        du = np.zeros_like(state.u)
        dv = np.zeros_like(state.v)
        dt = np.zeros_like(state.t)
        dq = np.zeros_like(state.q)
        du[:, -1] = -rho_cd_w * state.u[:, -1] / layer_mass
        dv[:, -1] = -rho_cd_w * state.v[:, -1] / layer_mass
        dt[:, -1] = shflx / (CP_AIR * layer_mass)
        dq[:, -1] = lhflx / (LATENT_HEAT_VAPORIZATION * layer_mass)
        return du, dv, dt, dq, shflx, lhflx

    def convective_adjustment(self, state: ColumnState, dt_s: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Relax super-critical lapse rates pairwise, conserving enthalpy.

        Returns (dT, dQ, convective precip rate).  The level loop is short
        (nlev) and fully vectorized over columns.
        """
        prm = self.params
        t = state.t.copy()
        q = state.q.copy()
        p = state.p
        z = 7500.0 * np.log(p[-1] / np.maximum(p, 1.0))  # heights, sfc-relative
        dz = z[:-1] - z[1:]  # positive: level k is above k+1

        for _ in range(prm.adjust_sweeps):
            # Lapse between adjacent levels (K/m), top index k above k+1.
            lapse = (t[:, 1:] - t[:, :-1]) / dz[None, :]
            unstable = lapse > prm.critical_lapse
            if not np.any(unstable):
                break
            excess = (lapse - prm.critical_lapse) * dz[None, :]
            adj = 0.25 * np.where(unstable, excess, 0.0)
            # Move heat upward: cool lower level, warm upper level.
            t_new = t.copy()
            t_new[:, 1:] -= adj
            t_new[:, :-1] += adj
            t = t_new

        dT = (t - state.t) / dt_s
        # Moisture: where convection fired, detrain toward 80 % RH.
        fired = np.abs(dT).sum(axis=1) > 0
        qsat = saturation_specific_humidity(t, p[None, :])
        q_target = np.minimum(q, 0.8 * qsat)
        dQ = np.where(fired[:, None], (q_target - q) / max(dt_s, 1.0), 0.0)
        # Removed moisture rains out (column integral, positive down).
        precip = -np.trapezoid(dQ, p, axis=1) / GRAVITY
        precip = np.maximum(precip, 0.0)
        return dT, dQ, precip

    def large_scale_condensation(self, state: ColumnState, dt_s: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Condense supersaturation: (dT, dQ, precip, cloud fraction)."""
        prm = self.params
        qsat = saturation_specific_humidity(state.t, state.p[None, :])
        excess = np.maximum(state.q - qsat, 0.0)
        rate = excess / prm.condensation_timescale
        dQ = -rate
        dT = (LATENT_HEAT_VAPORIZATION / CP_AIR) * rate
        precip = np.maximum(-np.trapezoid(dQ, state.p, axis=1) / GRAVITY, 0.0)
        rh = state.q / np.maximum(qsat, 1e-10)
        cloudy = np.clip(
            (rh - prm.cloud_rh_threshold) / (1.0 - prm.cloud_rh_threshold), 0.0, 1.0
        )
        # Total cloud fraction: random-overlap of layer clouds.
        cloud_fraction = 1.0 - np.prod(1.0 - 0.5 * cloudy, axis=1)
        return dT, dQ, precip, cloud_fraction

    def boundary_layer_diffusion(
        self, state: ColumnState, dt_s: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """K-profile vertical mixing of (U, V, T, Q): implicit solve with a
        surface-intensified diffusivity (reuses the same tridiagonal
        machinery as the ocean's Canuto scheme — one substrate, two
        components)."""
        from ..ocn.mixing import implicit_vertical_diffusion

        prm = self.params
        p = state.p
        nlev = state.nlev
        # Level "thicknesses" from the pressure spacing (hydrostatic).
        rho_air = p / (287.0 * 260.0)
        edges = np.concatenate([[p[0] - (p[1] - p[0]) / 2],
                                (p[:-1] + p[1:]) / 2,
                                [p[-1] + (p[-1] - p[-2]) / 2]])
        dz = np.abs(np.diff(edges)) / (rho_air * 9.81)
        dz = np.maximum(dz, 10.0)

        # K profile: surface value over the lowest pbl_depth_fraction of
        # the column, decaying upward (index 0 = top).
        k_iface = np.full(nlev - 1, prm.pbl_kappa_free)
        n_pbl = max(1, int(round(nlev * prm.pbl_depth_fraction)))
        ramp = np.linspace(0.0, 1.0, n_pbl)
        k_iface[-n_pbl:] = prm.pbl_kappa_free + (
            prm.pbl_kappa_surface - prm.pbl_kappa_free
        ) * ramp
        kappa = np.tile(k_iface[:, None], (1, state.ncol))

        out = []
        for field_ in (state.u, state.v, state.t, state.q):
            mixed = implicit_vertical_diffusion(field_.T.copy(), kappa, dz, dt_s)
            out.append((mixed.T - field_) / dt_s)
        return tuple(out)  # type: ignore[return-value]

    # -- the full suite -------------------------------------------------------

    def compute(self, state: ColumnState, dt_s: float) -> PhysicsTendencies:
        """Run all schemes and combine tendencies (process splitting)."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        dT_ls, dQ_ls, precip_ls, cloud = self.large_scale_condensation(state, dt_s)
        gsw, glw, dT_rad = self.radiation(state, cloud)
        dU_s, dV_s, dT_s_, dQ_s, shflx, lhflx = self.surface_layer(state)
        dT_cv, dQ_cv, precip_cv = self.convective_adjustment(state, dt_s)
        dU_bl, dV_bl, dT_bl, dQ_bl = self.boundary_layer_diffusion(state, dt_s)

        return PhysicsTendencies(
            du=dU_s + dU_bl,
            dv=dV_s + dV_bl,
            dt=dT_rad + dT_s_ + dT_cv + dT_ls + dT_bl,
            dq=dQ_s + dQ_cv + dQ_ls + dQ_bl,
            gsw=gsw,
            glw=glw,
            precip=precip_cv + precip_ls,
            cloud_fraction=cloud,
            shflx=shflx,
            lhflx=lhflx,
        )
