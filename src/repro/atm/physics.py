"""The conventional physics parameterization suite.

Four schemes, each a vectorized column parameterization of the kind the AI
suite replaces (§5.2.1): gray-atmosphere radiation (producing the surface
fluxes ``gsw``/``glw`` and a heating profile), a bulk surface layer,
dry/moist convective adjustment, and large-scale condensation.  The suite
returns (dU, dV, dT, dQ) tendencies plus the diagnostics (precipitation,
cloud fraction, surface fluxes) the coupler and the land model consume.

The suite is deliberately branch- and iteration-heavy relative to the AI
suite's dense tensor kernels — that cost asymmetry is the basis of the
paper's "computational gains by unifying most operations into highly
efficient tensor kernels" claim, measured in ``benchmarks/bench_ai_physics``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..pp import ExecutionSpace, KernelMetrics, KernelRegistry, KernelStats, Serial
from .columns import ColumnState

__all__ = ["PhysicsTendencies", "PhysicsParams", "ConventionalPhysics"]

SOLAR_CONSTANT = 1361.0  # W/m^2


@dataclass
class PhysicsTendencies:
    """Output of one physics step: tendencies (per second) + diagnostics."""

    du: np.ndarray           # (ncol, nlev) m/s^2
    dv: np.ndarray
    dt: np.ndarray           # K/s
    dq: np.ndarray           # kg/kg/s
    gsw: np.ndarray          # (ncol,) surface downward shortwave W/m^2
    glw: np.ndarray          # (ncol,) surface downward longwave W/m^2
    precip: np.ndarray       # (ncol,) kg/m^2/s
    cloud_fraction: np.ndarray  # (ncol,) diagnosed total cloud fraction
    shflx: np.ndarray        # (ncol,) surface sensible heat flux W/m^2
    lhflx: np.ndarray        # (ncol,) surface latent heat flux W/m^2

    def split(self, sizes) -> "list[PhysicsTendencies]":
        """Slice a stacked-column tendency batch back into per-member parts.

        ``sizes`` are the per-member column counts in stacking order; the
        slices are views, preserving bitwise identity with the batch.
        """
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        if offsets[-1] != self.gsw.shape[0]:
            raise ValueError(
                f"split sizes sum to {offsets[-1]}, batch has {self.gsw.shape[0]} columns"
            )
        parts = []
        for a, b in zip(offsets[:-1], offsets[1:]):
            parts.append(PhysicsTendencies(
                du=self.du[a:b], dv=self.dv[a:b], dt=self.dt[a:b], dq=self.dq[a:b],
                gsw=self.gsw[a:b], glw=self.glw[a:b], precip=self.precip[a:b],
                cloud_fraction=self.cloud_fraction[a:b],
                shflx=self.shflx[a:b], lhflx=self.lhflx[a:b],
            ))
        return parts


@dataclass(frozen=True)
class PhysicsParams:
    """Tunable coefficients of the conventional suite."""

    albedo: float = 0.3
    sw_absorptivity: float = 0.12      # column shortwave absorption share
    lw_emissivity_clear: float = 0.70
    lw_emissivity_cloud: float = 0.95
    lw_cooling_rate: float = 1.6e-5    # K/s radiative cooling scale
    drag_coefficient: float = 1.3e-3
    exchange_wind_min: float = 1.0     # m/s gustiness floor
    critical_lapse: float = 7.0e-3     # K/m convective threshold
    adjust_sweeps: int = 6
    condensation_timescale: float = 1800.0  # s
    cloud_rh_threshold: float = 0.8
    # K-profile boundary-layer diffusion: strong near the surface (where
    # the surface fluxes stir), decaying to a free-troposphere floor.
    pbl_kappa_surface: float = 10.0    # m^2/s
    pbl_kappa_free: float = 0.1        # m^2/s
    pbl_depth_fraction: float = 0.25   # share of levels in the PBL


class ConventionalPhysics:
    """The conventional suite; call :meth:`compute` on a column batch.

    Every scheme dispatches through the portable kernels in
    :mod:`repro.atm.kernels` on the bound execution space (the shared
    ``ComponentContext`` space in a coupled run, ``Serial`` standalone).
    Results are bit-identical on every space — the columns are
    independent, so chunking commutes with the math.
    """

    def __init__(
        self,
        params: PhysicsParams | None = None,
        space: Optional[ExecutionSpace] = None,
        metrics: Optional[KernelMetrics] = None,
        registry: Optional[KernelRegistry] = None,
    ) -> None:
        self.params = params if params is not None else PhysicsParams()
        self.space = space if space is not None else Serial()
        self.metrics = metrics
        self.registry = registry

    def bind(
        self,
        space: ExecutionSpace,
        metrics: Optional[KernelMetrics] = None,
        registry: Optional[KernelRegistry] = None,
    ) -> None:
        """Point kernel dispatch at a (shared) space + stats pool + per-context
        registry (``None`` keeps the module-level default registry)."""
        self.space = space
        if metrics is not None:
            self.metrics = metrics
        if registry is not None:
            self.registry = registry

    def _stats(self, kernel: str) -> Optional[KernelStats]:
        return self.metrics.stats(kernel) if self.metrics is not None else None

    # -- individual schemes -------------------------------------------------

    def radiation(
        self, state: ColumnState, cloud_fraction: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gray radiation: (gsw, glw, dT_rad)."""
        from .kernels import run_radiation

        prm = self.params
        return run_radiation(
            self.space, state, cloud_fraction,
            prm.albedo, prm.sw_absorptivity,
            prm.lw_emissivity_clear, prm.lw_emissivity_cloud,
            prm.lw_cooling_rate, stats=self._stats("atm.radiation"),
            registry=self.registry,
        )

    def surface_layer(
        self, state: ColumnState
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bulk fluxes: (dU, dV, dT, dQ tendencies at the lowest level plus
        sensible/latent fluxes)."""
        from .kernels import run_surface_layer

        prm = self.params
        return run_surface_layer(
            self.space, state, prm.drag_coefficient, prm.exchange_wind_min,
            stats=self._stats("atm.surface_layer"), registry=self.registry,
        )

    def convective_adjustment(self, state: ColumnState, dt_s: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Relax super-critical lapse rates pairwise, conserving enthalpy.

        Returns (dT, dQ, convective precip rate).  The level loop is short
        (nlev) and fully vectorized over each chunk of columns.
        """
        from .kernels import run_convective_adjustment

        prm = self.params
        return run_convective_adjustment(
            self.space, state, dt_s, prm.critical_lapse, prm.adjust_sweeps,
            stats=self._stats("atm.convective_adjustment"), registry=self.registry,
        )

    def large_scale_condensation(self, state: ColumnState, dt_s: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Condense supersaturation: (dT, dQ, precip, cloud fraction)."""
        from .kernels import run_condensation

        prm = self.params
        return run_condensation(
            self.space, state, prm.condensation_timescale,
            prm.cloud_rh_threshold, stats=self._stats("atm.condensation"),
            registry=self.registry,
        )

    def boundary_layer_diffusion(
        self, state: ColumnState, dt_s: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """K-profile vertical mixing of (U, V, T, Q): implicit solve with a
        surface-intensified diffusivity (reuses the same tridiagonal
        machinery as the ocean's Canuto scheme — one substrate, two
        components)."""
        from ..ocn.mixing import implicit_vertical_diffusion

        prm = self.params
        p = state.p
        nlev = state.nlev
        # Level "thicknesses" from the pressure spacing (hydrostatic).
        rho_air = p / (287.0 * 260.0)
        edges = np.concatenate([[p[0] - (p[1] - p[0]) / 2],
                                (p[:-1] + p[1:]) / 2,
                                [p[-1] + (p[-1] - p[-2]) / 2]])
        dz = np.abs(np.diff(edges)) / (rho_air * 9.81)
        dz = np.maximum(dz, 10.0)

        # K profile: surface value over the lowest pbl_depth_fraction of
        # the column, decaying upward (index 0 = top).
        k_iface = np.full(nlev - 1, prm.pbl_kappa_free)
        n_pbl = max(1, int(round(nlev * prm.pbl_depth_fraction)))
        ramp = np.linspace(0.0, 1.0, n_pbl)
        k_iface[-n_pbl:] = prm.pbl_kappa_free + (
            prm.pbl_kappa_surface - prm.pbl_kappa_free
        ) * ramp
        kappa = np.tile(k_iface[:, None], (1, state.ncol))

        out = []
        for field_ in (state.u, state.v, state.t, state.q):
            mixed = implicit_vertical_diffusion(field_.T.copy(), kappa, dz, dt_s)
            out.append((mixed.T - field_) / dt_s)
        return tuple(out)  # type: ignore[return-value]

    # -- the full suite -------------------------------------------------------

    def compute(self, state: ColumnState, dt_s: float) -> PhysicsTendencies:
        """Run all schemes and combine tendencies (process splitting)."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        dT_ls, dQ_ls, precip_ls, cloud = self.large_scale_condensation(state, dt_s)
        gsw, glw, dT_rad = self.radiation(state, cloud)
        dU_s, dV_s, dT_s_, dQ_s, shflx, lhflx = self.surface_layer(state)
        dT_cv, dQ_cv, precip_cv = self.convective_adjustment(state, dt_s)
        dU_bl, dV_bl, dT_bl, dQ_bl = self.boundary_layer_diffusion(state, dt_s)

        return PhysicsTendencies(
            du=dU_s + dU_bl,
            dv=dV_s + dV_bl,
            dt=dT_rad + dT_s_ + dT_cv + dT_ls + dT_bl,
            dq=dQ_s + dQ_cv + dQ_ls + dQ_bl,
            gsw=gsw,
            glw=glw,
            precip=precip_cv + precip_ls,
            cloud_fraction=cloud,
            shflx=shflx,
            lhflx=lhflx,
        )
