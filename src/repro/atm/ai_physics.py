"""The AI-powered, resolution-adaptive physics suite (§5.2.1, Fig. 4).

Three modules, exactly as the paper describes:

* **AI tendency module** — the 11-layer, 5-ResUnit 1-D CNN (~5x10^5
  parameters) mapping (U, V, T, Q, P) columns to (dU, dV, dT, dQ)
  tendencies;
* **AI radiation diagnosis module** — the 7-layer residual MLP taking the
  column plus ``tskin`` and ``coszr`` and producing the surface downward
  shortwave/longwave fluxes (gsw, glw) "which serve as inputs to the land
  surface model and surface layer scheme";
* **conventional physics diagnostic module** — precipitation and cloud
  fraction are still diagnosed conventionally from the (AI-updated) state.

Training follows the paper's protocol: the supervision is the
*conventional suite evaluated on high-resolution model states* (our
substitution for the 5 km GRIST archive — see DESIGN.md), 80 days with 20
per season, 7:1 day split, 3 random validation steps per training day.
Because the CNN convolves along the column, the trained suite runs on any
vertical/horizontal resolution — the "resolution-adaptive" property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..ai import Trainer, build_radiation_mlp, build_tendency_cnn, split_by_days
from ..utils.rng import seeded
from .columns import ColumnState, pressure_levels, reference_profiles
from .physics import ConventionalPhysics, PhysicsTendencies

__all__ = ["AIPhysicsSuite", "generate_training_archive", "harvest_archive_from_model", "synthetic_columns"]


def synthetic_columns(
    ncol: int,
    nlev: int,
    season: int,
    step: int,
    seed: int = 0,
) -> ColumnState:
    """A batch of diverse, weather-like columns for one (season, step).

    Seasonal cycle enters through the solar geometry and surface
    temperature distribution; step-level variability through perturbation
    amplitudes.  Deterministic in all arguments.
    """
    rng = seeded("columns", ncol, nlev, season, step, seed)
    p = pressure_levels(nlev)
    lat = rng.uniform(-np.pi / 2, np.pi / 2, ncol)
    season_phase = 2.0 * np.pi * season / 4.0
    declination = 0.41 * np.sin(season_phase)
    hour = 2.0 * np.pi * step / 8.0
    coszr = np.clip(
        np.sin(lat) * np.sin(declination)
        + np.cos(lat) * np.cos(declination) * np.cos(hour),
        0.0,
        1.0,
    )
    tsfc = 288.0 + 25.0 * np.cos(lat) ** 2 - 15.0 * np.cos(lat - declination) ** 2
    tskin = tsfc + rng.normal(0.0, 2.0, ncol) + 5.0 * coszr

    t = np.empty((ncol, nlev))
    q = np.empty((ncol, nlev))
    t_ref, q_ref = reference_profiles(p)
    t[:] = t_ref[None, :] + (tsfc[:, None] - 288.0) * (p / p[-1])[None, :]
    t += rng.normal(0.0, 1.5, (ncol, nlev))
    q[:] = q_ref[None, :] * np.exp(0.07 * (tsfc[:, None] - 288.0))
    q *= rng.lognormal(0.0, 0.4, (ncol, nlev))
    q = np.clip(q, 0.0, 0.035)

    shear = rng.normal(0.0, 8.0, (ncol, 1)) * (1.0 - (p / p[-1])[None, :])
    u = rng.normal(5.0, 4.0, (ncol, 1)) + shear + rng.normal(0.0, 1.0, (ncol, nlev))
    v = rng.normal(0.0, 3.0, (ncol, 1)) + rng.normal(0.0, 1.0, (ncol, nlev))
    return ColumnState(u=u, v=v, t=t, q=q, p=p, tskin=tskin, coszr=coszr)


def generate_training_archive(
    n_days: int = 80,
    steps_per_day: int = 8,
    ncol_per_step: int = 24,
    nlev: int = 30,
    physics: Optional[ConventionalPhysics] = None,
    dt_s: float = 120.0,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """The training archive: high-resolution conventional-physics pairs.

    Mirrors the paper's corpus: ``n_days`` spanning four seasons (20 each
    by default), several steps per day.  Returns arrays keyed:
    ``x_column`` (N, 5, nlev), ``y_tendency`` (N, 4, nlev),
    ``x_radiation`` (N, 5*nlev + 2), ``y_radiation`` (N, 2), plus the
    (day, step) shape metadata used by the splitter.
    """
    physics = physics if physics is not None else ConventionalPhysics()
    xs, ys, xr, yr = [], [], [], []
    for day in range(n_days):
        season = (day * 4) // max(n_days, 1)
        for step in range(steps_per_day):
            cols = synthetic_columns(ncol_per_step, nlev, season, step, seed=seed + day)
            tend = physics.compute(cols, dt_s)
            chan = cols.as_channels()
            xs.append(chan)
            ys.append(np.stack([tend.du, tend.dv, tend.dt, tend.dq], axis=1))
            flat = chan.reshape(chan.shape[0], -1)
            xr.append(np.concatenate([flat, cols.tskin[:, None], cols.coszr[:, None]], axis=1))
            yr.append(np.stack([tend.gsw, tend.glw], axis=1))
    return {
        "x_column": np.concatenate(xs),
        "y_tendency": np.concatenate(ys),
        "x_radiation": np.concatenate(xr),
        "y_radiation": np.concatenate(yr),
        "n_days": np.array(n_days),
        "steps_per_day": np.array(steps_per_day),
        "ncol_per_step": np.array(ncol_per_step),
    }


def harvest_archive_from_model(
    model,
    n_days: int = 4,
    samples_per_day: int = 8,
    ncol_per_sample: int = 32,
    physics: Optional[ConventionalPhysics] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Training archive harvested from a running model (the paper's actual
    protocol: "the training dataset consists of 5 km GRIST atmospheric
    fields" — i.e. the model's own output supervised by the conventional
    physics).

    ``model`` is an initialized :class:`repro.atm.model.GristModel` running
    the conventional suite; it is advanced in place.  Harvested columns
    carry the model's state distribution, so a suite trained on them stays
    in-distribution at inference — the property the purely synthetic
    archive cannot guarantee.
    """
    physics = physics if physics is not None else ConventionalPhysics()
    rng = seeded("harvest", n_days, samples_per_day, ncol_per_sample, seed)
    steps_per_day = max(1, int(round(86400.0 / model.dt_model)))
    stride = max(1, steps_per_day // samples_per_day)
    xs, ys, xr, yr = [], [], [], []
    for _day in range(n_days):
        for _sample in range(samples_per_day):
            model.run(stride)
            cols = model.current_columns()
            pick = rng.choice(cols.ncol, size=min(ncol_per_sample, cols.ncol), replace=False)
            sub = ColumnState(
                u=cols.u[pick], v=cols.v[pick], t=cols.t[pick], q=cols.q[pick],
                p=cols.p, tskin=cols.tskin[pick], coszr=cols.coszr[pick],
            )
            tend = physics.compute(sub, model.dt_model)
            chan = sub.as_channels()
            xs.append(chan)
            ys.append(np.stack([tend.du, tend.dv, tend.dt, tend.dq], axis=1))
            flat = chan.reshape(chan.shape[0], -1)
            xr.append(np.concatenate([flat, sub.tskin[:, None], sub.coszr[:, None]], axis=1))
            yr.append(np.stack([tend.gsw, tend.glw], axis=1))
    return {
        "x_column": np.concatenate(xs),
        "y_tendency": np.concatenate(ys),
        "x_radiation": np.concatenate(xr),
        "y_radiation": np.concatenate(yr),
        "n_days": np.array(n_days),
        "steps_per_day": np.array(samples_per_day),
        "ncol_per_step": np.array(min(ncol_per_sample, model.grid.n_cells)),
    }


@dataclass
class AIPhysicsSuite:
    """The trained suite: drop-in replacement for ConventionalPhysics.

    Build with :meth:`train`, then call :meth:`compute` with the same
    signature as the conventional suite.  The conventional *diagnostic*
    module (precipitation, cloud fraction) stays physical, per Fig. 4.
    """

    tendency_trainer: Trainer
    radiation_trainer: Trainer
    diagnostics: ConventionalPhysics = field(default_factory=ConventionalPhysics)
    # Per-channel tendency limits (du, dv, dT, dQ), set at train time to a
    # multiple of the largest |target| seen in training: the standard
    # guard rail when coupling ML parameterizations to a dycore —
    # out-of-distribution columns must not inject unbounded tendencies,
    # but in-distribution predictions must never be clipped.
    tendency_limits: Optional[np.ndarray] = None

    def bind(self, space, metrics=None, registry=None) -> None:
        """Point the conventional-diagnostics kernels at a (shared) space,
        stats pool, and per-context registry — the same binding contract
        as :class:`ConventionalPhysics`."""
        self.diagnostics.bind(space, metrics, registry=registry)

    @staticmethod
    def train(
        archive: Dict[str, np.ndarray],
        epochs: int = 10,
        width: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> "AIPhysicsSuite":
        """Train both AI modules on an archive (see
        :func:`generate_training_archive`), using the paper's 7:1 split."""
        n_days = int(archive["n_days"])
        steps_per_day = int(archive["steps_per_day"])
        ncol = int(archive["ncol_per_step"])
        split = split_by_days(n_days, steps_per_day, seed=seed)

        def expand(idx: np.ndarray) -> np.ndarray:
            # Step indices -> sample indices (ncol samples per step).
            return (idx[:, None] * ncol + np.arange(ncol)[None, :]).ravel()

        tr = expand(split.train)
        va = expand(split.validation)

        nlev = archive["x_column"].shape[-1]
        cnn = build_tendency_cnn(levels=nlev, width=width)
        tendency = Trainer(cnn, lr=lr, batch_size=64, seed=seed)
        tendency.fit(
            archive["x_column"][tr],
            archive["y_tendency"][tr],
            epochs=epochs,
            x_val=archive["x_column"][va],
            y_val=archive["y_tendency"][va],
        )

        mlp = build_radiation_mlp(levels=nlev)
        radiation = Trainer(mlp, lr=lr, batch_size=64, seed=seed)
        radiation.fit(
            archive["x_radiation"][tr],
            archive["y_radiation"][tr],
            epochs=epochs,
            x_val=archive["x_radiation"][va],
            y_val=archive["y_radiation"][va],
        )
        # Guard-rail limits: 3x the largest |tendency| in training, per
        # channel (du, dv, dT, dQ).
        limits = 3.0 * np.abs(archive["y_tendency"][tr]).max(axis=(0, 2))
        limits = np.maximum(limits, 1e-12)
        return AIPhysicsSuite(
            tendency_trainer=tendency,
            radiation_trainer=radiation,
            tendency_limits=limits,
        )

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trained suite (weights + normalizers + limits +
        architecture hyperparameters) as one compressed npz."""
        import json

        from ..ai.serialize import state_dict

        tend = self.tendency_trainer
        rad = self.radiation_trainer
        if tend.x_norm is None or rad.x_norm is None:
            raise RuntimeError("train the suite before saving it")
        # Architecture metadata to rebuild the nets at load time.
        stem = tend.model.layers[0]
        # Radiation input is (5 * levels + 2) features: recover levels.
        n_rad_in = int(rad.x_norm.mean.shape[-1])
        meta = {
            "levels": (n_rad_in - 2) // 5,
            "width": int(stem.w.value.shape[0]),
            "n_res_units": sum(1 for l in tend.model.layers if hasattr(l, "conv1")),
        }
        payload = {
            "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            "limits": self.tendency_limits if self.tendency_limits is not None else np.zeros(0),
            "t_xn_mean": tend.x_norm.mean, "t_xn_std": tend.x_norm.std,
            "t_yn_mean": tend.y_norm.mean, "t_yn_std": tend.y_norm.std,
            "r_xn_mean": rad.x_norm.mean, "r_xn_std": rad.x_norm.std,
            "r_yn_mean": rad.y_norm.mean, "r_yn_std": rad.y_norm.std,
        }
        for key, val in state_dict(tend.model).items():
            payload[f"t_{key}"] = val
        for key, val in state_dict(rad.model).items():
            payload[f"r_{key}"] = val
        np.savez_compressed(path, **payload)

    @staticmethod
    def load(path) -> "AIPhysicsSuite":
        """Rebuild a suite saved by :meth:`save`."""
        import json

        from ..ai import Normalizer, Trainer, build_radiation_mlp, build_tendency_cnn
        from ..ai.serialize import load_state_dict

        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            cnn = build_tendency_cnn(levels=meta["levels"], width=meta["width"],
                                     n_res_units=meta["n_res_units"])
            load_state_dict(
                cnn, {k[2:]: data[k] for k in data.files if k.startswith("t_p")}
            )
            mlp = build_radiation_mlp(levels=meta["levels"])
            load_state_dict(
                mlp, {k[2:]: data[k] for k in data.files if k.startswith("r_p")}
            )
            tend = Trainer(cnn)
            tend.x_norm = Normalizer(data["t_xn_mean"], data["t_xn_std"])
            tend.y_norm = Normalizer(data["t_yn_mean"], data["t_yn_std"])
            rad = Trainer(mlp)
            rad.x_norm = Normalizer(data["r_xn_mean"], data["r_xn_std"])
            rad.y_norm = Normalizer(data["r_yn_mean"], data["r_yn_std"])
            limits = data["limits"] if data["limits"].size else None
        return AIPhysicsSuite(
            tendency_trainer=tend, radiation_trainer=rad, tendency_limits=limits
        )

    # -- inference ------------------------------------------------------------

    def compute(self, state: ColumnState, dt_s: float) -> PhysicsTendencies:
        """AI tendencies + AI radiation + conventional diagnostics."""
        chan = state.as_channels()
        tend = self.tendency_trainer.predict(chan)
        if self.tendency_limits is not None:
            lim = self.tendency_limits[None, :, None]
            np.clip(tend, -lim, lim, out=tend)
        flat = chan.reshape(chan.shape[0], -1)
        rad_in = np.concatenate(
            [flat, state.tskin[:, None], state.coszr[:, None]], axis=1
        )
        rad = self.radiation_trainer.predict(rad_in)
        # Physical flux bounds (solar constant / warm-sky longwave).
        gsw = np.clip(rad[:, 0], 0.0, 1400.0)
        glw = np.clip(rad[:, 1], 0.0, 600.0)

        # Conventional diagnostic module on the AI-updated state.  Its
        # condensation tendencies are *added* to the AI tendencies: the
        # diagnosed rain must actually leave the moisture field, or the
        # small systematic under-drying of the learned dQ accumulates
        # supersaturation over coupled steps (moisture-budget closure).
        updated = state.copy()
        updated.t = state.t + tend[:, 2] * dt_s
        updated.q = np.maximum(state.q + tend[:, 3] * dt_s, 0.0)
        dt_ls, dq_ls, precip, cloud = self.diagnostics.large_scale_condensation(updated, dt_s)
        _, _, _, _, shflx, lhflx = self.diagnostics.surface_layer(updated)

        return PhysicsTendencies(
            du=tend[:, 0],
            dv=tend[:, 1],
            dt=tend[:, 2] + dt_ls,
            dq=tend[:, 3] + dq_ls,
            gsw=gsw,
            glw=glw,
            precip=precip,
            cloud_fraction=cloud,
            shflx=shflx,
            lhflx=lhflx,
        )

    def skill(self, archive: Dict[str, np.ndarray], idx: np.ndarray) -> Dict[str, float]:
        """R^2 of both modules on the given sample indices."""
        out: Dict[str, float] = {}
        for name, trainer, x, y in (
            ("tendency", self.tendency_trainer, archive["x_column"], archive["y_tendency"]),
            ("radiation", self.radiation_trainer, archive["x_radiation"], archive["y_radiation"]),
        ):
            pred = trainer.predict(x[idx])
            target = y[idx]
            ss_res = float(np.sum((pred - target) ** 2))
            ss_tot = float(np.sum((target - target.mean()) ** 2))
            out[name] = 1.0 - ss_res / max(ss_tot, 1e-300)
        return out
