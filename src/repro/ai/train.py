"""Training harness reproducing the paper's §5.2.1 data protocol.

"The training dataset consists of 5 km GRIST atmospheric fields spanning
80 days (20 from each season). We employ a 7:1 training:test partition,
and extract three random time steps per day as a validation subset for
hyperparameter tuning ... and reducing overfitting risk."

:func:`split_by_days` implements that partition (days split 7:1,
validation = 3 random steps per training day), and :class:`Trainer` runs
minibatch training with input/output normalization (fitted on the training
split only) and loss history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..utils.rng import seeded
from .network import Sequential
from .optim import Adam, clip_grad_norm

__all__ = ["DatasetSplit", "split_by_days", "Normalizer", "Trainer", "mse_loss"]


@dataclass(frozen=True)
class DatasetSplit:
    """Index sets into a (day, step) organized sample archive."""

    train: np.ndarray
    test: np.ndarray
    validation: np.ndarray

    def __post_init__(self) -> None:
        overlap = set(self.train.tolist()) & set(self.test.tolist())
        if overlap:
            raise ValueError("train/test overlap")


def split_by_days(
    n_days: int,
    steps_per_day: int,
    train_fraction: float = 7.0 / 8.0,
    val_steps_per_day: int = 3,
    seed: int = 0,
) -> DatasetSplit:
    """The paper's 7:1 day-wise split plus per-day random validation steps.

    Splitting by *days* (not samples) avoids the temporal leakage a random
    sample split would allow between adjacent time steps.
    """
    if n_days < 2:
        raise ValueError("need at least 2 days to split")
    if not 0 < train_fraction < 1:
        raise ValueError("train_fraction must be in (0, 1)")
    if val_steps_per_day > steps_per_day:
        raise ValueError("more validation steps than steps per day")
    rng = seeded("split", n_days, steps_per_day, seed)
    days = rng.permutation(n_days)
    n_train = max(1, int(round(n_days * train_fraction)))
    n_train = min(n_train, n_days - 1)
    train_days = np.sort(days[:n_train])
    test_days = np.sort(days[n_train:])

    def indices(day_list: np.ndarray) -> np.ndarray:
        return np.concatenate(
            [d * steps_per_day + np.arange(steps_per_day) for d in day_list]
        )

    train_idx = indices(train_days)
    test_idx = indices(test_days)
    val: List[int] = []
    for d in train_days:
        steps = rng.choice(steps_per_day, size=val_steps_per_day, replace=False)
        val.extend((d * steps_per_day + s) for s in steps)
    val_idx = np.array(sorted(val), dtype=np.int64)
    train_idx = np.setdiff1d(train_idx, val_idx)
    return DatasetSplit(train=train_idx, test=test_idx, validation=val_idx)


@dataclass
class Normalizer:
    """Per-channel standardization fitted on the training split only."""

    mean: np.ndarray
    std: np.ndarray

    @staticmethod
    def fit(x: np.ndarray, channel_axis: int = 1) -> "Normalizer":
        axes = tuple(i for i in range(x.ndim) if i != channel_axis)
        mean = x.mean(axis=axes, keepdims=True)
        std = x.std(axis=axes, keepdims=True)
        std = np.where(std < 1e-12, 1.0, std)
        return Normalizer(mean=mean, std=std)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean) / self.std

    def invert(self, x: np.ndarray) -> np.ndarray:
        return x * self.std + self.mean


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


@dataclass
class Trainer:
    """Minibatch trainer with normalization and history tracking."""

    model: Sequential
    lr: float = 1e-3
    batch_size: int = 32
    grad_clip: float = 10.0
    seed: int = 0
    history: Dict[str, List[float]] = field(default_factory=lambda: {"train": [], "val": []})
    x_norm: Optional[Normalizer] = None
    y_norm: Optional[Normalizer] = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> Dict[str, List[float]]:
        """Train; returns the loss history (normalized-space MSE)."""
        if len(x) != len(y):
            raise ValueError("x and y must have the same number of samples")
        if len(x) == 0:
            raise ValueError("empty training set")
        self.x_norm = Normalizer.fit(x)
        self.y_norm = Normalizer.fit(y)
        xn = self.x_norm.apply(x)
        yn = self.y_norm.apply(y)
        opt = Adam(self.model.parameters(), lr=self.lr)
        rng = seeded("trainer", self.seed)
        n = len(xn)
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for s in range(0, n, self.batch_size):
                idx = order[s : s + self.batch_size]
                pred = self.model.forward(xn[idx])
                loss, grad = mse_loss(pred, yn[idx])
                self.model.zero_grad()
                self.model.backward(grad)
                clip_grad_norm(self.model.parameters(), self.grad_clip)
                opt.step()
                epoch_loss += loss
                n_batches += 1
            self.history["train"].append(epoch_loss / n_batches)
            if x_val is not None and y_val is not None and len(x_val):
                self.history["val"].append(self.evaluate(x_val, y_val))
        return self.history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Normalized-space MSE on held-out data."""
        assert self.x_norm is not None and self.y_norm is not None, "fit first"
        pred = self.model.forward(self.x_norm.apply(x))
        loss, _ = mse_loss(pred, self.y_norm.apply(y))
        return loss

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Physical-space predictions."""
        assert self.x_norm is not None and self.y_norm is not None, "fit first"
        return self.y_norm.invert(self.model.forward(self.x_norm.apply(x)))
