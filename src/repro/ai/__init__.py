"""From-scratch numpy neural-network stack for the AI physics suite."""

from .layers import (
    Conv1d,
    Dense,
    Flatten,
    Layer,
    LayerNorm,
    Parameter,
    ReLU,
    ResidualDense,
    ResUnit,
    Tanh,
)
from .network import Sequential, build_radiation_mlp, build_tendency_cnn
from .optim import SGD, Adam, clip_grad_norm
from .serialize import load_model, load_state_dict, save_model, state_dict
from .train import DatasetSplit, Normalizer, Trainer, mse_loss, split_by_days

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "Conv1d",
    "ReLU",
    "Tanh",
    "LayerNorm",
    "ResUnit",
    "ResidualDense",
    "Flatten",
    "Sequential",
    "build_tendency_cnn",
    "build_radiation_mlp",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "DatasetSplit",
    "split_by_days",
    "Normalizer",
    "Trainer",
    "mse_loss",
    "state_dict",
    "load_state_dict",
    "save_model",
    "load_model",
]
