"""Network containers and the two §5.2.1 architectures.

* :func:`build_tendency_cnn` — the AI tendency module: "five ResUnits
  within an 11-layer deep CNN totaling approximately 5x10^5 trainable
  parameters", convolving along the vertical column with (U, V, T, Q, P)
  input channels and tendency output channels.
* :func:`build_radiation_mlp` — the AI radiation diagnosis module: a
  "7-layer multi-layer perceptron with residual connections" taking the
  flattened column plus ``tskin`` and ``coszr`` and estimating the surface
  downward shortwave/longwave fluxes (gsw, glw).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .layers import (
    Conv1d,
    Dense,
    Flatten,
    Layer,
    Parameter,
    ReLU,
    ResidualDense,
    ResUnit,
)

__all__ = ["Sequential", "build_tendency_cnn", "build_radiation_mlp"]


class Sequential(Layer):
    """A chain of layers with whole-net forward/backward."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def n_conv_layers(self) -> int:
        """Convolution depth (the paper counts its CNN as 11 layers)."""

        def count(layer: Layer) -> int:
            if isinstance(layer, Conv1d):
                return 1
            if isinstance(layer, ResUnit):
                return 2
            if isinstance(layer, Sequential):
                return sum(count(l) for l in layer.layers)
            return 0

        return sum(count(l) for l in self.layers)


def build_tendency_cnn(
    levels: int = 30,
    in_channels: int = 5,
    out_channels: int = 4,
    width: int = 128,
    n_res_units: int = 5,
    kernel: int = 3,
) -> Sequential:
    """The AI tendency module.

    Defaults give 1 stem conv + 5 ResUnits (10 convs) = 11 conv layers and
    ~5.0x10^5 parameters at width 128 — the paper's quoted size, "chosen to
    balance predictive skill and computational cost".

    Input ``(batch, in_channels, levels)`` = (U, V, T, Q, P) columns;
    output ``(batch, out_channels, levels)`` = (dU, dV, dT, dQ) tendencies.
    """
    layers: List[Layer] = [Conv1d(in_channels, width, kernel, rng_key="tend.stem"), ReLU()]
    for i in range(n_res_units):
        layers.append(ResUnit(width, kernel, rng_key=f"tend.res{i}"))
        layers.append(ReLU())
    layers.append(Conv1d(width, out_channels, 1, rng_key="tend.head"))
    return Sequential(layers)


def build_radiation_mlp(
    levels: int = 30,
    in_channels: int = 5,
    n_extra: int = 2,
    width: int = 160,
    n_outputs: int = 2,
) -> Sequential:
    """The AI radiation diagnosis module.

    7 dense layers: input projection + 5 hidden (two residual blocks plus
    one plain hidden layer) + output head; inputs are the flattened column
    (in_channels * levels) plus ``n_extra`` scalars (tskin, coszr);
    outputs are (gsw, glw).
    """
    n_in = in_channels * levels + n_extra
    layers: List[Layer] = [
        Dense(n_in, width, rng_key="rad.in"),        # layer 1
        ReLU(),
        ResidualDense(width, rng_key="rad.res1"),    # layers 2-3
        ResidualDense(width, rng_key="rad.res2"),    # layers 4-5
        Dense(width, width, rng_key="rad.hidden"),   # layer 6
        ReLU(),
        Dense(width, n_outputs, rng_key="rad.out"),  # layer 7
    ]
    return Sequential(layers)
