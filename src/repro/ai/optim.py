"""Optimizers (SGD with momentum, Adam) for the numpy parameter stack."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so the global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring training stability).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in params)))
    if total > max_norm:
        scale = max_norm / (total + 1e-30)
        for p in params:
            p.grad *= scale
    return total


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.value -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
