"""Model serialization: state dicts for the numpy network stack.

Trained AI-physics suites must survive the session (the paper's suite is
trained once on the 80-day archive and then deployed everywhere), so this
module provides torch-style state dicts over the :class:`~repro.ai.layers.
Parameter` tree plus npz persistence.  Loading validates shapes — a
changed architecture fails loudly instead of silently mis-assigning.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from .layers import Layer

__all__ = ["state_dict", "load_state_dict", "save_model", "load_model"]


def state_dict(model: Layer) -> Dict[str, np.ndarray]:
    """Ordered parameter values keyed ``p<i>`` (layer traversal order)."""
    return {f"p{i}": p.value.copy() for i, p in enumerate(model.parameters())}


def load_state_dict(model: Layer, state: Dict[str, np.ndarray]) -> None:
    """Assign saved values into an existing architecture (shape-checked)."""
    params = model.parameters()
    expected = {f"p{i}" for i in range(len(params))}
    if set(state.keys()) != expected:
        raise ValueError(
            f"state dict has {len(state)} entries; model has {len(params)} "
            "parameters (architecture mismatch)"
        )
    for i, p in enumerate(params):
        value = np.asarray(state[f"p{i}"])
        if value.shape != p.value.shape:
            raise ValueError(
                f"parameter p{i} shape mismatch: saved {value.shape}, "
                f"model {p.value.shape}"
            )
        p.value[...] = value


def save_model(path: Union[str, Path], model: Layer) -> None:
    """Persist a model's parameters as a compressed npz."""
    np.savez_compressed(path, **state_dict(model))


def load_model(path: Union[str, Path], model: Layer) -> None:
    """Load parameters saved by :func:`save_model` into ``model``."""
    with np.load(path) as data:
        load_state_dict(model, {k: data[k] for k in data.files})
