"""Neural-network layers with manual backprop, in pure numpy.

The AI physics suite (§5.2.1) needs exactly two architectures — an
11-layer 1-D CNN with 5 ResUnits (~5x10^5 parameters) applying "a
one-dimensional convolution along the vertical column", and a 7-layer MLP
with residual connections — so this module implements the minimal layer
zoo for them: Dense, Conv1d (same-padded), ReLU/Tanh, LayerNorm, ResUnit,
and Flatten.  Every layer exposes ``forward``/``backward``/``parameters``
and every backward pass is verified against finite differences in the
test suite.

Shapes: Conv1d works on ``(batch, channels, levels)``; Dense on
``(batch, features)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import seeded

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "Conv1d",
    "ReLU",
    "Tanh",
    "LayerNorm",
    "ResUnit",
    "ResidualDense",
    "Flatten",
    "row_stable_matmul",
]

#: Fixed GEMM row-block size for :func:`row_stable_matmul`.
_ROW_BLOCK = 32


def row_stable_matmul(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``a @ w`` with a bitwise row-invariance guarantee.

    BLAS picks its kernel (and with it the per-row accumulation order)
    from the full problem shape, so ``(a @ w)[i]`` can differ in the last
    ulp between batch sizes — e.g. the small-N and single-row paths.
    Computing in fixed ``_ROW_BLOCK``-row chunks (zero-padding the tail
    chunk) pins the kernel choice, so every row's result depends only on
    that row and ``w``.  This is what makes cross-member *batched*
    ensemble inference bitwise-identical to per-member inference.
    """
    m = a.shape[0]
    if m == _ROW_BLOCK:
        return a @ w
    out = np.empty((m, w.shape[1]), dtype=np.result_type(a, w))
    for i in range(0, m, _ROW_BLOCK):
        chunk = a[i:i + _ROW_BLOCK]
        rows = chunk.shape[0]
        if rows < _ROW_BLOCK:
            pad = np.zeros((_ROW_BLOCK - rows, a.shape[1]), dtype=a.dtype)
            out[i:i + rows] = (np.concatenate([chunk, pad]) @ w)[:rows]
        else:
            out[i:i + rows] = chunk @ w
    return out


@dataclass
class Parameter:
    """A trainable array with its gradient accumulator."""

    value: np.ndarray
    grad: np.ndarray = field(init=False)
    name: str = ""

    def __post_init__(self) -> None:
        self.value = np.asarray(self.value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer:
    """Base layer: stateless API contract."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return grad w.r.t. the input."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.parameters())


class Dense(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, n_in: int, n_out: int, rng_key: str = "dense") -> None:
        rng = seeded("ai", rng_key, n_in, n_out)
        scale = np.sqrt(2.0 / n_in)
        self.w = Parameter(rng.standard_normal((n_in, n_out)) * scale, name=f"{rng_key}.w")
        self.b = Parameter(np.zeros(n_out), name=f"{rng_key}.b")
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return row_stable_matmul(x, self.w.value) + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward before backward"
        self.w.grad += self._x.T @ grad_out
        self.b.grad += grad_out.sum(axis=0)
        return grad_out @ self.w.value.T

    def parameters(self) -> List[Parameter]:
        return [self.w, self.b]


class Conv1d(Layer):
    """Same-padded 1-D convolution over the vertical (level) axis.

    Input ``(batch, c_in, L)`` -> output ``(batch, c_out, L)``; odd kernel
    sizes only (symmetric padding).  Implemented with
    ``sliding_window_view`` + einsum: no python loops over levels.
    """

    def __init__(self, c_in: int, c_out: int, kernel: int = 3, rng_key: str = "conv") -> None:
        if kernel % 2 != 1:
            raise ValueError("kernel size must be odd for same padding")
        rng = seeded("ai", rng_key, c_in, c_out, kernel)
        scale = np.sqrt(2.0 / (c_in * kernel))
        self.w = Parameter(
            rng.standard_normal((c_out, c_in, kernel)) * scale, name=f"{rng_key}.w"
        )
        self.b = Parameter(np.zeros(c_out), name=f"{rng_key}.b")
        self.kernel = kernel
        self._x: Optional[np.ndarray] = None

    def _window(self, x: np.ndarray) -> np.ndarray:
        pad = self.kernel // 2
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad)))
        # (batch, c_in, L, kernel)
        return np.lib.stride_tricks.sliding_window_view(xp, self.kernel, axis=2)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError("Conv1d expects (batch, channels, levels)")
        self._x = x
        win = self._window(x)
        # Explicit im2col GEMM: one row-stable matmul with a fixed
        # (c_in*kernel) reduction order per output row.  Unlike einsum's
        # optimizer — which may pick different contraction paths at
        # different batch sizes — this keeps each row's result
        # bit-identical whether the row is computed alone or inside a
        # larger (ensemble) batch.
        b, c, length, k = win.shape
        cols = win.transpose(0, 2, 1, 3).reshape(b * length, c * k)
        w_mat = self.w.value.reshape(self.w.value.shape[0], c * k)
        out = row_stable_matmul(cols, w_mat.T)
        return out.reshape(b, length, -1).transpose(0, 2, 1) + self.b.value[None, :, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward before backward"
        win = self._window(self._x)
        self.w.grad += np.einsum("bclk,bol->ock", win, grad_out, optimize=True)
        self.b.grad += grad_out.sum(axis=(0, 2))
        # Input gradient: correlate grad_out with the flipped kernel.
        pad = self.kernel // 2
        gp = np.pad(grad_out, ((0, 0), (0, 0), (pad, pad)))
        gwin = np.lib.stride_tricks.sliding_window_view(gp, self.kernel, axis=2)
        w_flip = self.w.value[:, :, ::-1]
        return np.einsum("bolk,ock->bcl", gwin, w_flip, optimize=True)

    def parameters(self) -> List[Parameter]:
        return [self.w, self.b]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad_out, 0.0)


class Tanh(Layer):
    def __init__(self) -> None:
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._y is not None
        return grad_out * (1.0 - self._y**2)


class LayerNorm(Layer):
    """Normalization over the last axis with learned scale/shift."""

    def __init__(self, n_features: int, eps: float = 1e-5, rng_key: str = "ln") -> None:
        self.gamma = Parameter(np.ones(n_features), name=f"{rng_key}.gamma")
        self.beta = Parameter(np.zeros(n_features), name=f"{rng_key}.beta")
        self.eps = eps
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mu) * inv
        self._cache = (xhat, inv, x)
        return xhat * self.gamma.value + self.beta.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        xhat, inv, x = self._cache
        n = x.shape[-1]
        # Reduce over all axes but the last for the parameter grads.
        red_axes = tuple(range(grad_out.ndim - 1))
        self.gamma.grad += (grad_out * xhat).sum(axis=red_axes)
        self.beta.grad += grad_out.sum(axis=red_axes)
        g = grad_out * self.gamma.value
        gx = (
            g - g.mean(axis=-1, keepdims=True)
            - xhat * (g * xhat).mean(axis=-1, keepdims=True)
        ) * inv
        return gx

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]


class ResUnit(Layer):
    """Residual unit: ``y = x + Conv(ReLU(Conv(x)))`` (two conv layers).

    Five of these plus a stem conv give the paper's "five ResUnits within
    an 11-layer deep CNN".
    """

    def __init__(self, channels: int, kernel: int = 3, rng_key: str = "res") -> None:
        self.conv1 = Conv1d(channels, channels, kernel, rng_key=f"{rng_key}.c1")
        self.act = ReLU()
        self.conv2 = Conv1d(channels, channels, kernel, rng_key=f"{rng_key}.c2")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.conv2.forward(self.act.forward(self.conv1.forward(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.conv1.backward(self.act.backward(self.conv2.backward(grad_out)))
        return grad_out + g

    def parameters(self) -> List[Parameter]:
        return self.conv1.parameters() + self.conv2.parameters()


class ResidualDense(Layer):
    """Residual MLP block: ``y = x + Dense(ReLU(Dense(x)))`` — the building
    block of the 7-layer radiation MLP."""

    def __init__(self, features: int, rng_key: str = "rd") -> None:
        self.fc1 = Dense(features, features, rng_key=f"{rng_key}.fc1")
        self.act = ReLU()
        self.fc2 = Dense(features, features, rng_key=f"{rng_key}.fc2")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.fc2.forward(self.act.forward(self.fc1.forward(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.fc1.backward(self.act.backward(self.fc2.backward(grad_out)))
        return grad_out + g

    def parameters(self) -> List[Parameter]:
        return self.fc1.parameters() + self.fc2.parameters()


class Flatten(Layer):
    """(batch, ...) -> (batch, prod(...))."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad_out.reshape(self._shape)
