"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, subsystem inventory, Table 1 configurations.
``run-coupled``
    Run the coupled AP3ESM for N days and print diagnostics + SYPD.
``run-ensemble``
    Run N perturbed coupled members in lockstep inside ONE process,
    optionally batching all members' AI/conventional physics columns
    into a single suite call per step.
``typhoon``
    The idealized-typhoon experiment (Figs. 6/7) with track output.
``scaling``
    Regenerate the Table 2 / Fig. 8a strong-scaling tables.
``train-ai``
    Harvest a training archive from the model and train the AI suite.
``perf-gate``
    Compare a benchmark's ``BENCH_*.json`` against a committed baseline
    (the CI regression gate; wall-time metrics are informational only).
``submit``
    Journal one scenario job (config delta + perturbed IC + coupling
    budget) into a durable job store.
``run-jobs``
    Drive a job store's queued jobs to completion with the crash-safe
    scenario service (recovers jobs a killed service left running).

The parser is assembled from per-subcommand ``_build_*`` functions that
share the ``_add_*_group`` argument-group helpers, so ``run-coupled``
and ``run-ensemble`` present identical core/precision/coupler/
observability groups (snapshot-tested by introspection — keep group
titles and flag membership stable).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# Shared argument groups


def _add_core_group(p: argparse.ArgumentParser) -> None:
    core = p.add_argument_group("core", "model size and schedule")
    core.add_argument("--days", type=float, default=1.0)
    core.add_argument("--atm-level", type=int, default=3)
    core.add_argument("--ocn-nlon", type=int, default=64)
    core.add_argument("--ocn-nlat", type=int, default=48)
    core.add_argument("--ocn-levels", type=int, default=8)
    core.add_argument("--restart-dir", default=None,
                      help="write a restart set here at the end")
    core.add_argument("--backend", default="serial",
                      choices=("serial", "threads", "cpe", "gpu", "procs"),
                      help="execution backend for component kernels; 'procs' "
                           "fans kernels across host cores via a shared-memory "
                           "process pool, bitwise-identical to 'serial'")
    core.add_argument("--backend-workers", type=int, default=0, metavar="N",
                      help="worker/lane count for --backend "
                           "(default 0: all cores for 'procs')")
    core.add_argument("--concurrent-domains", action="store_true",
                      help="run task domain 2 (ocean) on its own thread "
                           "(§5.1.2; bitwise-identical to the serial schedule)")


def _add_precision_group(p: argparse.ArgumentParser) -> None:
    prec = p.add_argument_group("precision", "storage precision (§5.2.3)")
    prec.add_argument("--precision", choices=("fp64", "mixed"), default="mixed",
                      help="storage precision policy for prognostic state "
                           "(§5.2.3; default: mixed group-scaled FP32)")


def _add_resilience_group(p: argparse.ArgumentParser) -> None:
    res = p.add_argument_group(
        "resilience", "checkpoints, recovery, and chaos testing"
    )
    res.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="write a rotating checksummed checkpoint every N "
                          "couplings (requires --checkpoint-dir)")
    res.add_argument("--checkpoint-dir", default=None,
                     help="rotating checkpoint directory")
    res.add_argument("--checkpoint-keep", type=int, default=3,
                     help="checkpoints kept in the rotation (default 3)")
    res.add_argument("--recovery-policy", choices=("abort", "shrink", "spare"),
                     default="abort",
                     help="what to do when a rank dies mid-run: abort "
                          "(default, pre-elastic behavior), shrink "
                          "(survivors absorb the lost work and continue "
                          "degraded), or spare (an idle rank takes the slot; "
                          "bitwise-identical to a fault-free run); non-abort "
                          "policies require --checkpoint-every/--checkpoint-dir")
    res.add_argument("--spare-ranks", type=int, default=1, metavar="K",
                     help="idle ranks pre-allocated for --recovery-policy "
                          "spare (default 1)")
    res.add_argument("--faults", default=None, metavar="PLAN_JSON",
                     help="chaos mode: inject this FaultPlan, crash, recover "
                          "from the newest valid checkpoint, and verify the "
                          "run is bitwise identical to a fault-free twin")
    res.add_argument("--couplings", type=int, default=6,
                     help="coupling steps for chaos mode (default 6; "
                          "ignored without --faults)")


def _add_coupler_group(p: argparse.ArgumentParser) -> None:
    cpl = p.add_argument_group("coupler", "coupler fast path (§5.2.4)")
    cpl.add_argument("--coupler-cache", default=None, metavar="DIR",
                     help="content-addressed offline GSMap/Router cache "
                          "directory: a warm cache skips Router.build and "
                          "compiles coalesced rearrange plans; stale entries "
                          "(changed decompositions) miss automatically")
    cpl.add_argument("--prune-fields", action="store_true",
                     help="prune unused coupling fields from every exchange "
                          "path (§5.2.4); surviving fields stay bitwise "
                          "identical")


def _add_obs_group(p: argparse.ArgumentParser) -> None:
    obsg = p.add_argument_group("observability", "tracing and reports")
    obsg.add_argument("--trace", default=None, metavar="TRACE_JSON",
                      help="record a structured trace and write Chrome-trace "
                           "JSON here (open in chrome://tracing or Perfetto)")


def _add_ensemble_group(p: argparse.ArgumentParser) -> None:
    ens = p.add_argument_group(
        "ensemble", "member count, perturbations, and cross-member batching"
    )
    ens.add_argument("--members", type=int, default=2, metavar="N",
                     help="ensemble size (default 2); member 0 is never "
                          "perturbed and stays bitwise-identical to a solo "
                          "run-coupled twin")
    ens.add_argument("--perturb-seed", type=int, default=0,
                     help="namespace seed for the deterministic per-member "
                          "initial-condition perturbation streams")
    ens.add_argument("--perturb-amplitude", type=float, default=1e-3,
                     metavar="K",
                     help="Gaussian temperature perturbation amplitude in K "
                          "applied to members k >= 1 (default 1e-3)")
    ens.add_argument("--batch-physics", action="store_true",
                     help="stack every member's physics columns into ONE "
                          "suite call per atmosphere step (one GEMM serves "
                          "the fleet); bitwise-identical to per-member calls")


def _add_supervisor_group(p: argparse.ArgumentParser) -> None:
    sup = p.add_argument_group(
        "fleet supervisor", "member-level fault isolation and rejoin"
    )
    sup.add_argument("--member-policy",
                     choices=("fail_fast", "quarantine", "restart"),
                     default="fail_fast",
                     help="what the fleet does when ONE member fails: "
                          "fail_fast (default, pre-supervisor behavior), "
                          "quarantine (drop the member, survivors continue "
                          "bitwise-identical to a smaller fleet), or restart "
                          "(roll the member back to its rotating checkpoint, "
                          "replay it solo to the fleet clock, and rejoin "
                          "bitwise-identical; requires --checkpoint-every/"
                          "--checkpoint-dir)")
    sup.add_argument("--member-restart-max", type=int, default=2, metavar="K",
                     help="restarts allowed per member before escalating to "
                          "quarantine (default 2)")
    sup.add_argument("--faults", default=None, metavar="PLAN_JSON",
                     help="inject this FaultPlan's member-scoped physics/comm "
                          "faults (entries with a \"member\" key) into the "
                          "fleet and let the supervisor handle them")
    sup.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="write per-member rotating checkpoints (under "
                          "<dir>/member<k>/) every N couplings "
                          "(requires --checkpoint-dir)")
    sup.add_argument("--checkpoint-dir", default=None,
                     help="per-member rotating checkpoint root directory")
    sup.add_argument("--checkpoint-keep", type=int, default=3,
                     help="checkpoints kept per member (default 3)")


def _add_store_group(p: argparse.ArgumentParser) -> None:
    svc = p.add_argument_group("job store", "the durable scenario job journal")
    svc.add_argument("--store", required=True, metavar="DIR",
                     help="job store directory (holds the CRC'd append-only "
                          "journal; replaying it reconstructs the job table "
                          "after any crash)")


def _add_job_spec_group(p: argparse.ArgumentParser) -> None:
    job = p.add_argument_group("job spec", "what one scenario job runs")
    job.add_argument("--job-id", required=True,
                     help="unique job name ([A-Za-z0-9._-]+)")
    job.add_argument("--couplings", type=int, default=2,
                     help="coupling steps to run (default 2)")
    job.add_argument("--members", type=int, default=1, metavar="N",
                     help="1 = solo coupled run (default); > 1 = an "
                          "ensemble of N members")
    job.add_argument("--delta", action="append", default=[], metavar="KEY=VAL",
                     help="AP3ESMConfig override (repeatable); validity is "
                          "checked at RUN time, so a bad delta burns the "
                          "job's attempts through the circuit breaker")
    job.add_argument("--perturb-seed", type=int, default=0,
                     help="seed for the deterministic IC perturbation stream")
    job.add_argument("--perturb-amplitude", type=float, default=0.0,
                     metavar="K",
                     help="Gaussian temperature perturbation amplitude in K "
                          "(default 0: unperturbed)")
    job.add_argument("--batch-physics", action="store_true",
                     help="stack member physics into one suite call "
                          "(ensemble jobs only)")
    job.add_argument("--max-attempts", type=int, default=3, metavar="K",
                     help="run attempts before the circuit breaker "
                          "quarantines the spec (default 3)")
    job.add_argument("--deadline-s", type=float, default=None, metavar="T",
                     help="per-attempt wall-clock deadline in seconds "
                          "(default: unbounded)")


def _add_scheduler_group(p: argparse.ArgumentParser) -> None:
    sched = p.add_argument_group(
        "scheduler", "worker pool, liveness, retry, and chaos"
    )
    sched.add_argument("--work-dir", required=True, metavar="DIR",
                       help="per-job checkpoint rotations and published "
                            "restart sets live under <DIR>/jobs/<id>/")
    sched.add_argument("--workers", type=int, default=2, metavar="N",
                       help="pool threads with --threads (default 2; "
                            "ignored inline)")
    sched.add_argument("--threads", action="store_true",
                       help="fan attempts across a thread pool instead of "
                            "the deterministic inline loop")
    sched.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="admission limit on queued + running jobs "
                            "(default 64)")
    sched.add_argument("--heartbeat-timeout-s", type=float, default=30.0,
                       metavar="T",
                       help="reap (requeue) a running job whose worker has "
                            "not heartbeat within T seconds (default 30)")
    sched.add_argument("--checkpoint-every", type=int, default=2, metavar="N",
                       help="rotating-checkpoint cadence forced onto every "
                            "job (default 2 couplings)")
    sched.add_argument("--checkpoint-keep", type=int, default=3,
                       help="checkpoints kept per job rotation (default 3)")
    sched.add_argument("--faults", default=None, metavar="PLAN_JSON",
                       help="inject this FaultPlan's worker_kill faults "
                            "(service entries) into the pool")


def _add_base_model_group(p: argparse.ArgumentParser) -> None:
    base = p.add_argument_group(
        "base model", "the configuration job deltas apply onto"
    )
    base.add_argument("--atm-level", type=int, default=3)
    base.add_argument("--ocn-nlon", type=int, default=64)
    base.add_argument("--ocn-nlat", type=int, default=48)
    base.add_argument("--ocn-levels", type=int, default=8)
    base.add_argument("--precision", choices=("fp64", "mixed"),
                      default="fp64",
                      help="base storage precision (jobs may override via "
                           "--delta precision=...)")


# ---------------------------------------------------------------------------
# Per-subcommand builders


def _build_info(sub) -> None:
    sub.add_parser("info", help="library and configuration summary")


def _build_run_coupled(sub) -> None:
    run = sub.add_parser("run-coupled", help="run the coupled model")
    # Flags are organized into stable argument groups (core / precision /
    # resilience / coupler / observability); tests snapshot the grouping
    # via parser introspection, so keep titles and membership stable.
    _add_core_group(run)
    _add_precision_group(run)
    _add_resilience_group(run)
    _add_coupler_group(run)
    _add_obs_group(run)


def _build_run_ensemble(sub) -> None:
    run = sub.add_parser(
        "run-ensemble",
        help="run N perturbed coupled members in lockstep (one process)",
    )
    _add_core_group(run)
    _add_ensemble_group(run)
    _add_supervisor_group(run)
    _add_precision_group(run)
    _add_coupler_group(run)
    _add_obs_group(run)


def _build_typhoon(sub) -> None:
    ty = sub.add_parser("typhoon", help="idealized typhoon experiment")
    ty.add_argument("--hours", type=int, default=12)
    ty.add_argument("--atm-level", type=int, default=4)
    ty.add_argument("--vmax", type=float, default=40.0)
    ty.add_argument("--rmax-km", type=float, default=500.0)


def _build_scaling(sub) -> None:
    sc = sub.add_parser("scaling", help="Table 2 / Fig. 8a tables")
    sc.add_argument("--curve", default=None,
                    help="one curve key (default: all)")


def _build_train_ai(sub) -> None:
    tr = sub.add_parser("train-ai", help="train the AI physics suite")
    tr.add_argument("--days", type=int, default=6)
    tr.add_argument("--epochs", type=int, default=40)
    tr.add_argument("--width", type=int, default=32)


def _build_perf_gate(sub) -> None:
    pg = sub.add_parser(
        "perf-gate",
        help="compare a BENCH_*.json run against a committed baseline",
    )
    pg.add_argument("current", help="BENCH_*.json emitted by a benchmark run")
    pg.add_argument("baseline", help="committed baseline JSON")
    pg.add_argument("--tolerance", type=float, default=0.15,
                    help="relative drift allowed on count/model metrics "
                         "(default 0.15); wall metrics never gate")
    pg.add_argument("--one-sided", action="store_true",
                    help="only fail on increases, not improvements")
    pg.add_argument("--drift-tolerance", type=float, default=0.5,
                    help="|modeled-vs-measured| band allowed on drift "
                         "metrics (default 0.5); non-finite drift always "
                         "fails")


def _add_calibration_group(parser: argparse.ArgumentParser) -> None:
    cal = parser.add_argument_group(
        "calibration", "measured probe kernels -> fitted machine-model cost terms"
    )
    cal.add_argument("--out", default="CALIBRATION.json", metavar="TABLE_JSON",
                     help="where to write the fitted CalibrationTable "
                          "(default CALIBRATION.json)")
    cal.add_argument("--sizes", default="16384,65536",
                     help="comma-separated probe iteration counts "
                          "(>= 2 sizes fits the per-launch cost)")
    cal.add_argument("--repeats", type=int, default=3,
                     help="launches per probe per size; best-of is fitted "
                          "(default 3)")
    cal.add_argument("--check", default=None, metavar="TABLE_JSON",
                     help="load an existing table, re-measure the probes and "
                          "report modeled-vs-measured drift per kernel "
                          "instead of fitting; exit 1 when any kernel "
                          "exceeds --drift-tolerance")
    cal.add_argument("--drift-tolerance", type=float, default=0.5,
                     help="|drift| band allowed by --check (default 0.5)")


def _build_calibrate(sub) -> None:
    cal = sub.add_parser(
        "calibrate",
        help="fit machine-model cost terms from measured probe kernels",
    )
    _add_calibration_group(cal)


def _build_submit(sub) -> None:
    sb = sub.add_parser(
        "submit",
        help="journal one scenario job into a durable job store",
    )
    _add_store_group(sb)
    _add_job_spec_group(sb)


def _build_run_jobs(sub) -> None:
    rj = sub.add_parser(
        "run-jobs",
        help="drive a job store's queue with the crash-safe service",
    )
    _add_store_group(rj)
    _add_scheduler_group(rj)
    _add_base_model_group(rj)


_BUILDERS = (
    _build_info,
    _build_run_coupled,
    _build_run_ensemble,
    _build_typhoon,
    _build_scaling,
    _build_train_ai,
    _build_perf_gate,
    _build_calibrate,
    _build_submit,
    _build_run_jobs,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AP3ESM reproduction (SC '25) — coupled Earth system "
                    "model at laptop scale",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for builder in _BUILDERS:
        builder(sub)
    return parser


# ---------------------------------------------------------------------------
# Command implementations


def _cmd_info() -> int:
    import repro
    from repro.esm import AP3ESM_CONFIGS, GRIST_CONFIGS, LICOM_CONFIGS

    print(f"repro {repro.__version__} — AP3ESM reproduction (SC '25)")
    print(f"subpackages: {', '.join(repro.__all__)}")
    print("\nTable 1 configurations:")
    for label, pairing in AP3ESM_CONFIGS.items():
        print(f"  {label:>6}: atm {pairing.atm_resolution_km:g} km "
              f"({pairing.atm.grid_points:.1e} pts) + "
              f"ocn {pairing.ocn_resolution_km:g} km "
              f"({pairing.ocn.grid_points:.1e} pts)")
    return 0


def _resilience_config(args: argparse.Namespace):
    """Build the ResilienceConfig the run-coupled flags describe (None
    when no resilience flag was given — the zero-overhead default)."""
    elastic = getattr(args, "recovery_policy", "abort") != "abort"
    if not (args.checkpoint_every or args.checkpoint_dir or args.faults
            or elastic):
        return None
    from repro.resilience import ResilienceConfig

    if args.checkpoint_every and not args.checkpoint_dir:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    if elastic and not (args.checkpoint_every and args.checkpoint_dir):
        raise SystemExit(
            f"--recovery-policy {args.recovery_policy} needs a rollback "
            "target: pass --checkpoint-every and --checkpoint-dir"
        )
    return ResilienceConfig(
        enabled=True,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep=args.checkpoint_keep,
        max_retries=3,
        recv_timeout_s=5.0,
        recovery_policy=getattr(args, "recovery_policy", "abort"),
        spare_ranks=getattr(args, "spare_ranks", 1),
    )


def _ensemble_resilience_config(args: argparse.Namespace):
    """(ResilienceConfig, FaultPlan) for run-ensemble's fleet supervisor
    — ``(None, None)`` when no supervisor flag was given, keeping the
    default run byte-identical to the pre-supervisor CLI."""
    plan = None
    if args.faults:
        from repro.resilience import FaultPlan

        plan = FaultPlan.from_file(args.faults)
    if (args.member_policy == "fail_fast" and plan is None
            and not (args.checkpoint_every or args.checkpoint_dir)):
        return None, None
    from repro.resilience import ResilienceConfig

    if args.checkpoint_every and not args.checkpoint_dir:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    if (args.member_policy == "restart"
            and not (args.checkpoint_every and args.checkpoint_dir)):
        raise SystemExit(
            "--member-policy restart needs a rollback target: pass "
            "--checkpoint-every and --checkpoint-dir"
        )
    # Member-level isolation supersedes the per-column guardrail (which
    # would mask injected blow-ups before the supervisor sees them, and
    # is incompatible with --batch-physics).
    return ResilienceConfig(
        enabled=True,
        guard_physics=False,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep=args.checkpoint_keep,
        max_retries=3,
        recv_timeout_s=5.0,
        member_policy=args.member_policy,
        member_restart_max=args.member_restart_max,
    ), plan


def _coupled_config(args: argparse.Namespace, resilience=None):
    """The AP3ESMConfig described by the shared core/precision/coupler
    flags (used by run-coupled, chaos mode, and run-ensemble's base)."""
    from repro.esm import AP3ESMConfig

    kwargs = {} if resilience is None else {"resilience": resilience}
    return AP3ESMConfig(
        atm_level=args.atm_level, ocn_nlon=args.ocn_nlon,
        ocn_nlat=args.ocn_nlat, ocn_levels=args.ocn_levels,
        precision=args.precision,
        concurrent_domains=args.concurrent_domains,
        prune_fields=args.prune_fields,
        coupler_cache_dir=args.coupler_cache,
        backend=args.backend,
        backend_workers=args.backend_workers,
        **kwargs,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    """run-coupled --faults: the chaos harness instead of a plain run."""
    from repro.resilience import FaultPlan, run_chaos

    plan = FaultPlan.from_file(args.faults)
    config = _coupled_config(args, resilience=_resilience_config(args))
    print(f"chaos: injecting {plan.n_faults} fault(s) from {args.faults} "
          f"over {args.couplings} coupling(s)...")
    report = run_chaos(plan, config=config, couplings=args.couplings)
    print(report.summary())
    return 0 if report.survived else 1


def _print_pool_stats(pstats) -> None:
    if pstats is None:
        return
    print(f"procs backend: {pstats.workers} worker(s), "
          f"{pstats.dispatches} pool dispatch(es), "
          f"{pstats.fallbacks} in-process fallback(s), "
          f"{pstats.bytes_shared / 1e6:.1f} MB staged, "
          f"occupancy {pstats.occupancy:.2f}")


def _cmd_run_coupled(args: argparse.Namespace) -> int:
    from repro.esm import AP3ESM, atm_snapshot
    from repro.utils import get_timing

    if args.faults:
        return _cmd_chaos(args)
    obs = None
    if args.trace:
        from repro.obs import Obs

        obs = Obs()
    model = AP3ESM(_coupled_config(args, resilience=_resilience_config(args)),
                   obs=obs)
    model.init()
    schedule = "concurrent" if args.concurrent_domains else "serial"
    print(f"running {args.days:g} coupled days "
          f"({schedule} task domains, {args.precision} storage, "
          f"{args.backend} backend)...")
    model.run_days(args.days)
    for ev in model.recovery_events:
        print(f"recovered ({ev['policy']}) from {ev['error']} in "
              f"{ev['domain']} at coupling {ev['failed_at_coupling']}: "
              f"rolled back to {ev['restored_to_coupling']}, replayed "
              f"{ev['replayed_couplings']} coupling(s)")
    if model.scheduler.degraded:
        est = model.degraded_sypd()
        print(f"degraded layout {model.scheduler.degraded}: modeled "
              f"{est['sypd_degraded']:.3g} SYPD "
              f"({est['slowdown']:.3f}x slowdown vs fault-free)")
    mem = model.memory_report()
    if mem["n_fp32"] or mem["n_fp32_groupscaled"]:
        print(f"mixed-precision state: {mem['bytes_fp64']:.0f} -> "
              f"{mem['bytes_mixed']:.0f} bytes "
              f"({100 * mem['saving_fraction']:.0f}% saving, "
              f"{mem['n_fp32']:.0f} FP32 + "
              f"{mem['n_fp32_groupscaled']:.0f} group-scaled of "
              f"{mem['n_variables']:.0f} fields)")
    snap = atm_snapshot(model.atm)
    sst = model.ocn.export_state()["sst"]
    wet = model.ocn.mask3d[0]
    print(f"precip {snap['precip'].mean() * 86400:.2f} mm/day | "
          f"cloud {snap['cloud_fraction'].mean():.2f} | "
          f"SST {sst[wet].min():.1f}..{sst[wet].max():.1f} C | "
          f"ice {model.ice.total_area() / 1e12:.2f} Mkm^2")
    rep = get_timing([model.timers], "cpl_run",
                     simulated_days=model.n_couplings * model.dt_couple / 86400.0)
    print(f"throughput: {rep.sypd:.1f} SYPD on this machine")
    _print_pool_stats(model.pool_stats())
    if args.coupler_cache or args.prune_fields:
        creport = model.coupler_report()
        if model.coupler_cache is not None:
            cs = creport["cache"]
            print(f"coupler cache: {cs['hits']:.0f} hit(s), "
                  f"{cs['misses']:.0f} miss(es), "
                  f"{cs['build_time_saved_s'] * 1e3:.2f} ms of "
                  f"Router/GSMap construction skipped")
            for name, counts in creport["plans"].items():
                print(f"plan {name}: {counts['coalesced_messages_per_edge']:.0f} "
                      f"message/edge coalesced from "
                      f"{counts['per_field_messages_per_edge']:.0f} "
                      f"({counts['message_reduction']:.0f}x fewer)")
        if args.prune_fields:
            for path, t in creport["exchange"].items():
                if t["fields_pruned"]:
                    print(f"pruned {path}: {t['fields_pruned']:.0f} field "
                          f"slot(s) ({t['bytes_saved'] / 1e6:.2f} MB) "
                          f"never exchanged")
    if args.restart_dir:
        model.atm.save_restart(f"{args.restart_dir}/atm")
        model.ocn.save_restart(f"{args.restart_dir}/ocn")
        print(f"restart written to {args.restart_dir}/(atm|ocn)")
    model.finalize()
    if obs is not None:
        path = obs.write_chrome_trace(args.trace)
        print(obs.report())
        print(f"trace written to {path} (open in chrome://tracing / Perfetto)")
    return 0


def _cmd_run_ensemble(args: argparse.Namespace) -> int:
    from repro.esm import EnsembleConfig, EnsembleRun

    obs = None
    if args.trace:
        from repro.obs import Obs

        obs = Obs()
    resilience, plan = _ensemble_resilience_config(args)
    ens = EnsembleRun(EnsembleConfig(
        base=_coupled_config(args, resilience=resilience),
        members=args.members,
        perturb_seed=args.perturb_seed,
        perturb_amplitude=args.perturb_amplitude,
        batch_physics=args.batch_physics,
        fault_plan=plan,
    ), obs=obs)
    ens.init()
    couplings = max(1, round(args.days * 86400.0 / ens.members[0].dt_couple))
    mode = "batched" if args.batch_physics else "per-member"
    print(f"running {args.members} member(s) for {args.days:g} coupled "
          f"day(s) ({couplings} coupling(s), {mode} physics, "
          f"{args.precision} storage, {args.backend} backend)...")
    ens.run_couplings(couplings)
    summary = ens.summary()
    for row in summary["members"]:
        print(f"member {row['member']:.0f}: {row['sypd']:.1f} SYPD "
              f"({row['couplings']:.0f} coupling(s), "
              f"{row['wall_s']:.2f} s wall)")
    sy = summary["sypd"]
    print(f"ensemble SYPD: mean {sy['mean']:.1f}, min {sy['min']:.1f}, "
          f"max {sy['max']:.1f}, spread {sy['spread']:.1f}")
    print(f"member spread: bottom-level T sigma "
          f"{summary['spread']['t_bot']:.2e} K")
    bp = summary.get("batched_physics")
    if bp is not None:
        print(f"batched physics: {bp['fleet_calls']} fleet call(s) served "
              f"{bp['columns_total']} member-columns over "
              f"{bp['fleet_steps']} lockstep step(s)")
    sup = summary.get("supervisor")
    if sup is not None:
        for ev in sup["events"]:
            extra = ""
            if ev["action"] == "restart":
                extra = (f" (replayed {ev['replayed_couplings']} "
                         f"coupling(s))")
            print(f"member {ev['member']} {ev['kind']} at coupling "
                  f"{ev['coupling']} -> {ev['action']}{extra}")
        print(f"fleet: {sup['alive']:.0f}/{sup['members_total']:.0f} "
              f"member(s) alive under '{sup['policy']}' "
              f"({sup['restarts']:.0f} restart(s), "
              f"{sup['quarantines']:.0f} quarantine(s), "
              f"{sup['escalations']:.0f} escalation(s))")
        if sup["quarantined"]:
            print(f"degraded fleet SYPD (surviving members): "
                  f"{sup['sypd_degraded']:.1f}")
    _print_pool_stats(ens.pool_stats())
    if args.restart_dir:
        ens.save_restarts(args.restart_dir)
        print(f"restarts written to {args.restart_dir}/member<k>/")
    ens.finalize()
    if obs is not None:
        path = obs.write_chrome_trace(args.trace)
        print(obs.report())
        print(f"trace written to {path} (open in chrome://tracing / Perfetto)")
    return 0


def _cmd_typhoon(args: argparse.Namespace) -> int:
    from repro.esm import AP3ESM, AP3ESMConfig, HollandVortex, TyphoonExperiment

    model = AP3ESM(AP3ESMConfig(atm_level=args.atm_level, ocn_nlon=64,
                                ocn_nlat=48, ocn_levels=8))
    model.init()
    vortex = HollandVortex(
        center_lon=math.radians(150.0), center_lat=math.radians(20.0),
        v_max=args.vmax, r_max=args.rmax_km * 1000.0,
    )
    exp = TyphoonExperiment(model, vortex)
    exp.run(args.hours)
    for fix in exp.tracker.fixes[:: max(1, args.hours // 6)]:
        print(f"+{fix.time / 3600:5.1f} h  ({math.degrees(fix.lon):6.1f} E, "
              f"{math.degrees(fix.lat):5.1f} N)  Vmax {fix.max_wind:5.1f} m/s")
    em = exp.eye_metrics()
    print(f"eye radius {em['eye_radius_km']:.0f} km | "
          f"max wind {em['max_wind']:.1f} m/s | "
          f"Ro p95 {em['rossby_p95']:.2e}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.bench import (
        STRONG_SCALING_CURVES,
        coupled_curve,
        evaluate_curve,
        format_curve_result,
    )

    if args.curve is not None:
        if args.curve not in STRONG_SCALING_CURVES:
            print(f"unknown curve {args.curve!r}; choose from "
                  f"{sorted(STRONG_SCALING_CURVES)}", file=sys.stderr)
            return 2
        curve = STRONG_SCALING_CURVES[args.curve]
        result = (coupled_curve(curve.resolution_label)
                  if curve.component == "coupled" else evaluate_curve(curve))
        print(format_curve_result(result))
        return 0
    for key, curve in STRONG_SCALING_CURVES.items():
        result = (coupled_curve(curve.resolution_label)
                  if curve.component == "coupled" else evaluate_curve(curve))
        print(format_curve_result(result))
    return 0


def _cmd_train_ai(args: argparse.Namespace) -> int:
    from repro.atm import (
        AIPhysicsSuite,
        GristConfig,
        GristModel,
        harvest_archive_from_model,
    )

    host = GristModel(GristConfig(level=3, nlev=10))
    host.init()
    print(f"harvesting {args.days} days of training data from the model...")
    archive = harvest_archive_from_model(host, n_days=args.days)
    suite = AIPhysicsSuite.train(archive, epochs=args.epochs, width=args.width)
    idx = np.arange(len(archive["x_column"]))
    skill = suite.skill(archive, idx)
    print(f"trained: tendency R^2 {skill['tendency']:.2f}, "
          f"radiation R^2 {skill['radiation']:.2f}, "
          f"CNN params {suite.tendency_trainer.model.n_params:,}")
    return 0


def _cmd_perf_gate(args) -> int:
    from repro.bench import PerfBaseline, compare_baselines

    comparison = compare_baselines(
        PerfBaseline.from_file(args.current),
        PerfBaseline.from_file(args.baseline),
        tolerance=args.tolerance,
        symmetric=not args.one_sided,
        drift_tolerance=args.drift_tolerance,
    )
    print(comparison.report())
    return 0 if comparison.ok else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.machine.calibrate import (
        CalibrationError,
        CalibrationTable,
        calibrate,
        drift_report,
        measure_probes,
    )

    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    except ValueError:
        raise SystemExit(f"--sizes expects comma-separated ints, got {args.sizes!r}")
    try:
        if args.check:
            table = CalibrationTable.from_file(args.check)
            measurements = measure_probes(sizes=sizes, repeats=args.repeats)
            report = drift_report(
                table, measurements, tolerance=args.drift_tolerance
            )
            print(report.report())
            return 0 if report.ok else 1
        table = calibrate(sizes=sizes, repeats=args.repeats)
    except CalibrationError as exc:
        raise SystemExit(f"calibration failed: {exc}") from None
    print(table.report())
    path = table.to_file(args.out)
    print(f"calibration table {table.table_id[:12]} -> {path}")
    return 0


def _coerce_delta_value(value: str):
    """KEY=VAL values arrive as strings; coerce the obvious scalars so
    ``--delta ocn_nlon=32`` really overrides an int field."""
    low = value.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def _parse_delta(pairs) -> dict:
    delta = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--delta expects KEY=VALUE, got {pair!r}")
        key, value = pair.split("=", 1)
        delta[key] = _coerce_delta_value(value)
    return delta


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import JobSpec, JobStore

    try:
        spec = JobSpec(
            job_id=args.job_id,
            couplings=args.couplings,
            config_delta=_parse_delta(args.delta),
            members=args.members,
            perturb_seed=args.perturb_seed,
            perturb_amplitude=args.perturb_amplitude,
            batch_physics=args.batch_physics,
            max_attempts=args.max_attempts,
            deadline_s=args.deadline_s,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid job spec: {exc}") from None
    with JobStore(args.store) as store:
        store.submit(spec)
        counts = store.counts()
    print(f"job {spec.job_id!r} queued ({spec.couplings} coupling(s), "
          f"{spec.members} member(s), "
          f"{len(spec.config_delta)} delta field(s))")
    print("store: " + ", ".join(
        f"{n} {state}" for state, n in sorted(counts.items())
    ))
    return 0


def _cmd_run_jobs(args: argparse.Namespace) -> int:
    from repro.esm import AP3ESMConfig
    from repro.serve import JobScheduler, JobStore, ServeConfig

    plan = None
    if args.faults:
        from repro.resilience import FaultPlan

        plan = FaultPlan.from_file(args.faults)
    base = AP3ESMConfig(
        atm_level=args.atm_level, ocn_nlon=args.ocn_nlon,
        ocn_nlat=args.ocn_nlat, ocn_levels=args.ocn_levels,
        precision=args.precision,
    )
    config = ServeConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        mode="threads" if args.threads else "inline",
    )

    def stream(ev: dict) -> None:
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(ev.items())
            if k not in ("kind", "job_id") and v is not None
        )
        print(f"[{ev['kind']}] {ev['job_id']}" + (f" ({detail})" if detail else ""))

    with JobStore(args.store) as store:
        sched = JobScheduler(
            store, base, args.work_dir, config,
            fault_plan=plan, on_event=stream,
        )
        recovered = sched.recover()
        if recovered["requeued"]:
            print(f"recovered: requeued {recovered['requeued']} job(s) a "
                  "previous service left running")
        if config.mode == "threads":
            sched.start()
            counts = sched.join()
        else:
            counts = sched.run_until_idle()
        rep = sched.report()
    print("final: " + (", ".join(
        f"{n} {state}" for state, n in sorted(counts.items())
    ) or "empty store"))
    for job_id, row in rep["jobs"].items():
        line = (f"  {job_id}: {row['state']} "
                f"({row['attempts']} attempt(s), {row['failures']} failure(s))")
        if row["error"] and row["state"] != "completed":
            line += f" — {row['error']}"
        print(line)
    bad = counts.get("failed", 0) + counts.get("quarantined", 0)
    return 1 if bad else 0


_COMMANDS = {
    "run-coupled": _cmd_run_coupled,
    "run-ensemble": _cmd_run_ensemble,
    "typhoon": _cmd_typhoon,
    "scaling": _cmd_scaling,
    "train-ai": _cmd_train_ai,
    "perf-gate": _cmd_perf_gate,
    "calibrate": _cmd_calibrate,
    "submit": _cmd_submit,
    "run-jobs": _cmd_run_jobs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
