"""The job scheduler: a supervised worker pool over the durable store.

Responsibilities, each journaled so a SIGKILL at any instant is
recoverable by replay:

* **Admission control** — ``submit`` rejects with
  :class:`~repro.serve.spec.ServeBackpressure` once queued + running
  jobs reach ``max_queue`` (nothing is journaled for a rejected spec).
* **Dispatch** — FIFO over the queued jobs; ``inline`` mode runs one
  attempt at a time on the caller's thread (deterministic — what the
  chaos harness drives), ``threads`` mode fans attempts across
  ``workers`` pool threads.
* **Liveness** — every attempt heartbeats once per coupling through the
  runner's ``tick``; :meth:`reap` requeues any running job whose
  heartbeat is older than ``heartbeat_timeout_s`` and bumps the job's
  attempt *generation*, so a zombie worker's eventual outcome is
  recognized as stale and dropped instead of double-journaling.
* **Interruption vs failure** — a killed worker
  (:class:`~repro.resilience.errors.WorkerKilled`), a reaped attempt, or
  a service crash requeues the job with NO failure penalty; a genuine
  failure (bad config delta, deadline, model error) burns a failure,
  backs off by the seeded :class:`~repro.resilience.retry.RetryPolicy`
  delay, and — at ``max_attempts`` — trips the circuit breaker into
  ``quarantined`` (``failed`` for single-attempt jobs), so a poisoned
  spec cannot starve the fleet.
* **Recovery** — :meth:`recover` (call after constructing a scheduler on
  a replayed store) requeues every job the previous service left
  ``running``; the runner's adoption shortcut then completes — without
  re-running — any job whose atomic publish landed before the crash.

Progress streams through ``on_event`` (one dict per transition) and
accumulates in :attr:`events`; :meth:`report` rolls the run up.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..esm.ap3esm import AP3ESMConfig
from ..resilience.errors import WorkerKilled
from ..resilience.faults import FaultPlan, ServiceFaultInjector
from ..resilience.retry import RetryPolicy
from .journal import JobStore
from .runner import JobRunner
from .spec import (
    JobDeadlineExceeded,
    JobSpec,
    ServeBackpressure,
    ServeError,
    ServiceCrash,
)

__all__ = ["ServeConfig", "JobScheduler"]


@dataclass
class ServeConfig:
    """Scheduler policy knobs (the service's half of the contract; the
    per-job half — attempts, deadline — lives on each JobSpec)."""

    #: Pool threads in ``threads`` mode (ignored inline).
    workers: int = 2
    #: Admission limit on queued + running jobs.
    max_queue: int = 64
    #: Heartbeat age past which :meth:`JobScheduler.reap` declares a
    #: running attempt dead and requeues its job.
    heartbeat_timeout_s: float = 30.0
    #: Rotating-checkpoint cadence/keep forced onto every job's config.
    checkpoint_every: int = 2
    checkpoint_keep: int = 3
    #: Backoff schedule between failed attempts (``max_retries`` is NOT
    #: consulted — each spec's ``max_attempts`` is the budget; only
    #: ``delay`` is used, so jitter/cap knobs apply verbatim).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: ``inline`` (deterministic, caller thread) or ``threads``.
    mode: str = "inline"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.mode not in ("inline", "threads"):
            raise ValueError(f"unknown mode {self.mode!r}; "
                             "choose from ('inline', 'threads')")


class JobScheduler:
    """Drives the store's queued jobs to a terminal state."""

    def __init__(
        self,
        store: JobStore,
        base_config: Optional[AP3ESMConfig] = None,
        work_dir: Union[str, Path] = "serve-work",
        config: Optional[ServeConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        obs=None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        self.store = store
        self.config = config if config is not None else ServeConfig()
        self.obs = obs
        self.runner = JobRunner(
            base_config,
            work_dir,
            checkpoint_every=self.config.checkpoint_every,
            checkpoint_keep=self.config.checkpoint_keep,
            obs=obs,
        )
        self.injector: Optional[ServiceFaultInjector] = None
        if fault_plan is not None and fault_plan.service:
            self.injector = ServiceFaultInjector(fault_plan, obs=obs)
        self._sleep = sleep
        self._clock = clock
        self._on_event = on_event
        self.events: List[Dict[str, object]] = []
        #: Per-job attempt generation; a result only lands if its
        #: generation is still current (reap bumps it).
        self._gen: Dict[str, int] = {}
        #: job_id -> (generation, coupling, heartbeat time).
        self.heartbeats: Dict[str, tuple] = {}
        self._mutex = threading.Lock()
        self._threads: List[threading.Thread] = []

    # -- events ------------------------------------------------------------

    def _event(self, kind: str, job_id: str, **extra: object) -> None:
        ev: Dict[str, object] = {"kind": kind, "job_id": job_id, **extra}
        self.events.append(ev)
        if self._on_event is not None:
            self._on_event(ev)

    # -- admission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> None:
        """Admit and journal one job, or push back."""
        with self._mutex:
            depth = self.store.depth
            if depth >= self.config.max_queue:
                if self.obs is not None:
                    self.obs.counter("serve.rejected").inc()
                raise ServeBackpressure(spec.job_id, depth, self.config.max_queue)
            self.store.submit(spec)
            if self.obs is not None:
                self.obs.counter("serve.submitted").inc()
                self.obs.gauge("serve.queue_depth").set(float(self.store.depth))
        self._event("submitted", spec.job_id, couplings=spec.couplings)

    # -- recovery ----------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Requeue every job the previous (killed) service left running.

        Interruptions carry no failure penalty; completed work whose
        publish landed is adopted by the runner on redispatch.  Returns
        ``{"requeued": n}``."""
        requeued = 0
        with self._mutex:
            for rec in list(self.store.jobs.values()):
                if rec.state == "running":
                    self.store.update(rec.spec.job_id, "queued")
                    requeued += 1
                    if self.obs is not None:
                        self.obs.counter("serve.requeued").inc()
        if requeued:
            self._event("recovered", "*", requeued=requeued)
        return {"requeued": requeued}

    # -- liveness ----------------------------------------------------------

    def heartbeat(self, job_id: str, gen: int, coupling: int) -> None:
        with self._mutex:
            self.heartbeats[job_id] = (gen, coupling, self._clock())

    def reap(self, now: Optional[float] = None) -> int:
        """Requeue running jobs whose heartbeat went stale (their worker
        is presumed dead/hung); bumps the generation so the zombie's
        late outcome is dropped.  Returns the number reaped."""
        now = self._clock() if now is None else now
        timeout = self.config.heartbeat_timeout_s
        reaped = 0
        with self._mutex:
            for job_id, rec in self.store.jobs.items():
                if rec.state != "running":
                    continue
                hb = self.heartbeats.get(job_id)
                if hb is None or now - hb[2] <= timeout:
                    continue
                self._gen[job_id] = self._gen.get(job_id, 0) + 1
                self.store.update(job_id, "queued")
                self.heartbeats.pop(job_id, None)
                reaped += 1
                if self.obs is not None:
                    self.obs.counter("serve.reaped").inc()
        if reaped:
            self._event("reaped", "*", reaped=reaped)
        return reaped

    # -- dispatch ----------------------------------------------------------

    def _claim(self) -> Optional[str]:
        """Move the FIFO-next queued job to running; None when idle."""
        with self._mutex:
            queued = self.store.queued_jobs()
            if not queued:
                return None
            rec = queued[0]
            job_id = rec.spec.job_id
            self._gen[job_id] = self._gen.get(job_id, 0) + 1
            self.store.update(job_id, "running", attempts=rec.attempts + 1)
            self.heartbeats[job_id] = (self._gen[job_id], -1, self._clock())
            if self.obs is not None:
                self.obs.gauge("serve.queue_depth").set(float(self.store.depth))
                self.obs.counter("serve.dispatched").inc()
            return job_id

    def _current(self, job_id: str, gen: int) -> bool:
        with self._mutex:
            return (self._gen.get(job_id) == gen
                    and self.store.jobs[job_id].state == "running")

    def _run_attempt(self, job_id: str) -> None:
        rec = self.store.jobs[job_id]
        spec = rec.spec
        gen = self._gen[job_id]
        started = self._clock()
        self._event("start", job_id, attempt=rec.attempts)

        def tick(coupling: int) -> None:
            self.heartbeat(job_id, gen, coupling)
            if self.injector is not None:
                self.injector.check(job_id, coupling)
            if spec.deadline_s is not None:
                elapsed = self._clock() - started
                if elapsed > spec.deadline_s:
                    raise JobDeadlineExceeded(job_id, spec.deadline_s, elapsed)

        try:
            result = self.runner.run(spec, tick)
        except ServiceCrash:
            raise  # a SIGKILL goes through every layer
        except WorkerKilled as exc:
            self._interrupted(job_id, gen, exc)
        except Exception as exc:  # noqa: BLE001 - every failure mode gates here
            self._failed(job_id, gen, exc)
        else:
            self._completed(job_id, gen, result)

    def _interrupted(self, job_id: str, gen: int, exc: WorkerKilled) -> None:
        if not self._current(job_id, gen):
            return
        with self._mutex:
            self.store.update(job_id, "queued", error=str(exc))
            self.heartbeats.pop(job_id, None)
            if self.obs is not None:
                self.obs.counter("serve.interruptions").inc()
        self._event("interrupted", job_id, coupling=exc.coupling)

    def _failed(self, job_id: str, gen: int, exc: Exception) -> None:
        if not self._current(job_id, gen):
            return
        spec = self.store.jobs[job_id].spec
        failures = self.store.jobs[job_id].failures + 1
        if failures >= spec.max_attempts:
            # Circuit breaker: the spec is poisoned (or out of budget).
            state = "quarantined" if spec.max_attempts > 1 else "failed"
            with self._mutex:
                self.store.update(job_id, state, failures=failures,
                                  error=str(exc))
                self.heartbeats.pop(job_id, None)
                if self.obs is not None:
                    self.obs.counter(f"serve.{state}").inc()
            self._event(state, job_id, failures=failures, error=str(exc))
            return
        delay = self.config.retry.delay(failures)
        with self._mutex:
            self.store.update(job_id, "queued", failures=failures,
                              error=str(exc))
            self.heartbeats.pop(job_id, None)
            if self.obs is not None:
                self.obs.counter("serve.retries").inc()
        self._event("retry", job_id, failures=failures, delay_s=delay,
                    error=str(exc))
        if delay > 0:
            self._sleep(delay)

    def _completed(self, job_id: str, gen: int, result: Dict[str, object]) -> None:
        if not self._current(job_id, gen):
            return  # stale attempt (reaped and redispatched elsewhere)
        with self._mutex:
            self.store.update(job_id, "completed", result=result)
            self.heartbeats.pop(job_id, None)
            if self.obs is not None:
                self.obs.counter("serve.completed").inc()
                self.obs.gauge("serve.queue_depth").set(float(self.store.depth))
        self._event("completed", job_id,
                    adopted=bool(result.get("adopted")),
                    resumed_from=result.get("resumed_from"))

    # -- drive -------------------------------------------------------------

    def run_until_idle(self, max_attempts: Optional[int] = None) -> Dict[str, int]:
        """Inline mode: run attempts one at a time until no job is
        dispatchable (``max_attempts`` bounds runaway retry loops).
        Returns the final state counts."""
        if self.config.mode != "inline":
            raise ServeError("run_until_idle requires mode='inline' "
                             "(use start()/join() for threads)")
        ran = 0
        while True:
            if max_attempts is not None and ran >= max_attempts:
                break
            job_id = self._claim()
            if job_id is None:
                break
            ran += 1
            self._run_attempt(job_id)
        return self.store.counts()

    def start(self) -> None:
        """Threads mode: start the worker pool."""
        if self.config.mode != "threads":
            raise ServeError("start() requires mode='threads'")
        if self._threads:
            raise ServeError("scheduler already started")
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            self._threads.append(t)
            t.start()

    def _worker_loop(self) -> None:
        while True:
            job_id = self._claim()
            if job_id is None:
                with self._mutex:
                    busy = any(r.state == "running"
                               for r in self.store.jobs.values())
                if not busy:
                    return
                time.sleep(0.01)
                continue
            self._run_attempt(job_id)

    def join(self, reap_every_s: float = 0.05) -> Dict[str, int]:
        """Threads mode: wait for the pool to drain, reaping stale
        heartbeats on the way; returns the final state counts."""
        while any(t.is_alive() for t in self._threads):
            self.reap()
            time.sleep(reap_every_s)
        for t in self._threads:
            t.join()
        self._threads = []
        return self.store.counts()

    # -- reporting ---------------------------------------------------------

    def report(self) -> Dict[str, object]:
        counts = self.store.counts()
        return {
            "counts": counts,
            "jobs": {
                job_id: {
                    "state": rec.state,
                    "attempts": rec.attempts,
                    "failures": rec.failures,
                    "error": rec.error,
                    "result": rec.result,
                }
                for job_id, rec in sorted(self.store.jobs.items())
            },
            "events": list(self.events),
            "journal_records": self.store.appends,
            "faults_injected": (self.injector.injected
                                if self.injector is not None else 0),
        }
