"""The job runner: drive ONE scenario job attempt, resumably.

One attempt = build the model the spec describes (base config + delta),
restore it from the job's newest valid checkpoint if one exists (else
perturb and write the coupling-0 seed checkpoint, so the perturbed IC is
itself durable), step to the coupling budget writing rotating
checkpoints on the way, write a final checkpoint, and atomically publish
the finished restart set.

Crash-safety invariants the scheduler's bitwise guarantee rests on:

* **Seed checkpoint** — the perturbation is applied exactly once, at
  coupling 0, and immediately checkpointed: a resumed attempt restores
  the perturbed state bitwise instead of re-perturbing.
* **Final checkpoint** — written after the loop even when
  ``checkpoint_every`` does not divide the budget, so an attempt killed
  between "run finished" and "result published" republishes from the
  final checkpoint bitwise.
* **Atomic publish** — the restart set is staged under
  ``restart.tmp-*`` and ``os.rename``'d to ``restart/``; existence of
  the published directory therefore PROVES the job ran to completion,
  which is what :meth:`JobRunner.run`'s adoption shortcut and the
  scheduler's recovery lean on ("no job is ever run to completion
  twice").

The ``tick(coupling)`` callback fires once per coupling *before*
stepping; the scheduler composes heartbeat, fault injection
(``worker_kill``), and the per-job deadline into it.  Whatever it raises
abandons the attempt between couplings — the model is discarded and the
next attempt resumes from the rotation.
"""

from __future__ import annotations

import dataclasses
import shutil
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..esm.ap3esm import AP3ESM, AP3ESMConfig
from ..resilience.config import ResilienceConfig
from ..utils.rng import seeded
from .spec import JobSpec

__all__ = ["JobRunner"]

_PUBLISH = "restart"
_STAGING = "restart.tmp"


class JobRunner:
    """Runs job attempts under ``<work_dir>/jobs/<job_id>/``."""

    def __init__(
        self,
        base_config: Optional[AP3ESMConfig] = None,
        work_dir: Union[str, Path] = "serve-work",
        checkpoint_every: int = 2,
        checkpoint_keep: int = 3,
        obs=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.base_config = (base_config if base_config is not None
                            else AP3ESMConfig())
        self.work_dir = Path(work_dir)
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.obs = obs

    # -- layout ------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.work_dir / "jobs" / job_id

    def published_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / _PUBLISH

    # -- config ------------------------------------------------------------

    def job_config(self, spec: JobSpec) -> AP3ESMConfig:
        """Base config + the spec's delta, with the job's rotating
        checkpoint directory forced on.  Raises on unknown delta fields
        or invalid values — at RUN time, so a poisoned spec burns its
        attempts through the circuit breaker instead of being silently
        dropped at submit."""
        valid = {f.name for f in dataclasses.fields(AP3ESMConfig)} - {
            "physics", "resilience",
        }
        unknown = set(spec.config_delta) - valid
        if unknown:
            raise ValueError(
                f"job {spec.job_id!r} config delta has unknown fields: "
                f"{sorted(unknown)}"
            )
        cfg = dataclasses.replace(self.base_config, **dict(spec.config_delta))
        return dataclasses.replace(
            cfg,
            resilience=ResilienceConfig(
                enabled=True,
                guard_physics=False,
                checkpoint_every=self.checkpoint_every,
                checkpoint_dir=str(self.job_dir(spec.job_id) / "ckpt"),
                checkpoint_keep=self.checkpoint_keep,
            ),
        )

    # -- one attempt -------------------------------------------------------

    def run(
        self,
        spec: JobSpec,
        tick: Optional[Callable[[int], None]] = None,
    ) -> Dict[str, object]:
        """Run (or resume, or adopt) one attempt of ``spec``.

        Returns the result dict journaled with the ``completed`` record:
        ``{"restart_dir", "couplings", "resumed_from", "adopted"}``.
        """
        published = self.published_dir(spec.job_id)
        if published.exists():
            # The atomic publish completed, so the job DID run to the end
            # — only the completed journal record is missing (the service
            # died in between).  Adopt the result instead of re-running.
            if self.obs is not None:
                self.obs.counter("serve.adopted").inc()
            return {
                "restart_dir": str(published),
                "couplings": spec.couplings,
                "resumed_from": None,
                "adopted": True,
            }
        if spec.members > 1:
            return self._run_ensemble(spec, tick)
        return self._run_solo(spec, tick)

    def _run_solo(self, spec: JobSpec, tick) -> Dict[str, object]:
        model = AP3ESM(self.job_config(spec))
        model.init()
        resumed_from: Optional[int] = None
        if model.checkpoints.latest() is not None:
            model.checkpoints.restore_latest_valid(model.load_restart)
            resumed_from = model.n_couplings
            if self.obs is not None:
                self.obs.counter("serve.resumes").inc()
        else:
            self._perturb(spec, model)
            model.checkpoint()  # coupling-0 seed: the perturbed IC is durable
        try:
            every = self.checkpoint_every
            while model.n_couplings < spec.couplings:
                if tick is not None:
                    tick(model.n_couplings)
                model.step_coupling()
                if model.n_couplings % every == 0:
                    model.checkpoint()
            if model.n_couplings % every != 0:
                model.checkpoint()  # final: republish-after-crash is bitwise
            out = self._publish(spec, model.save_restart)
        finally:
            model.finalize()
        out["resumed_from"] = resumed_from
        return out

    def _run_ensemble(self, spec: JobSpec, tick) -> Dict[str, object]:
        from ..esm.ensemble import EnsembleConfig, EnsembleRun

        ens = EnsembleRun(EnsembleConfig(
            base=self.job_config(spec),
            members=spec.members,
            perturb_seed=spec.perturb_seed,
            perturb_amplitude=spec.perturb_amplitude,
            batch_physics=spec.batch_physics,
        ))
        ens.init()
        resumed_from: Optional[int] = None
        if ens.has_checkpoint():
            resumed_from = ens.recover()
            if self.obs is not None:
                self.obs.counter("serve.resumes").inc()
        else:
            ens.checkpoint()  # coupling-0 seed (perturbations applied in init)
        try:
            every = self.checkpoint_every
            while ens.n_couplings < spec.couplings:
                if tick is not None:
                    tick(ens.n_couplings)
                ens.step_coupling()
                if ens.n_couplings % every == 0:
                    ens.checkpoint()
            if ens.n_couplings % every != 0:
                ens.checkpoint()
            out = self._publish(spec, ens.save_restarts)
        finally:
            ens.finalize()
        out["resumed_from"] = resumed_from
        return out

    def _perturb(self, spec: JobSpec, model: AP3ESM) -> None:
        """Seeded IC perturbation for solo jobs, keyed on the job id so
        distinct jobs sharing a seed stay mutually distinct."""
        if spec.perturb_amplitude == 0.0:
            return
        rng = seeded("serve.job", spec.perturb_seed, spec.job_id)
        noise = rng.standard_normal(model.atm.t_col.shape)
        model.atm.t_col = model.atm.t_col + spec.perturb_amplitude * noise

    def _publish(self, spec: JobSpec, saver) -> Dict[str, object]:
        """Stage the restart set, then make it visible with ONE atomic
        rename — the commit point of the whole job."""
        final = self.published_dir(spec.job_id)
        staging = self.job_dir(spec.job_id) / f"{_STAGING}-{spec.job_id}"
        if staging.exists():
            shutil.rmtree(staging)
        saver(staging)
        staging.rename(final)
        if self.obs is not None:
            self.obs.counter("serve.published").inc()
        return {
            "restart_dir": str(final),
            "couplings": spec.couplings,
            "adopted": False,
        }
