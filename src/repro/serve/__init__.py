"""``repro.serve`` — the crash-safe scenario job service.

Run AP³ESM as a multi-tenant simulation server: scenario jobs (config
deltas + perturbed ICs + coupling budgets) are journaled durably,
dispatched to a supervised worker pool, checkpointed as they run, and
published atomically — so a SIGKILL of the whole service at ANY instant
is recovered by journal replay + checkpoint resume, with every completed
job's restart set bitwise-identical to an uninterrupted twin's.

Layers (each importable alone):

* :mod:`repro.serve.spec` — :class:`JobSpec` / :class:`JobRecord`, the
  state machine, and the service error taxonomy;
* :mod:`repro.serve.journal` — :class:`JobStore`, the CRC'd append-only
  JSONL journal with idempotent replay and atomic segment rotation;
* :mod:`repro.serve.runner` — :class:`JobRunner`, one resumable job
  attempt (seed checkpoint → step/checkpoint loop → atomic publish);
* :mod:`repro.serve.scheduler` — :class:`JobScheduler` /
  :class:`ServeConfig`, the worker pool with admission control,
  heartbeat reaping, retry-with-backoff, and the failure circuit
  breaker.

Nothing here is imported by the model, the ensemble, or the default CLI
paths — ``run-coupled``/``run-ensemble`` never touch this package (the
zero-overhead rule the tests pin with a subprocess import check).
"""

from __future__ import annotations

from .journal import JobStore
from .runner import JobRunner
from .scheduler import JobScheduler, ServeConfig
from .spec import (
    JOB_STATES,
    JobDeadlineExceeded,
    JobRecord,
    JobSpec,
    ServeBackpressure,
    ServeError,
    ServiceCrash,
)

__all__ = [
    "JOB_STATES",
    "JobSpec",
    "JobRecord",
    "JobStore",
    "JobRunner",
    "JobScheduler",
    "ServeConfig",
    "ServeError",
    "ServeBackpressure",
    "JobDeadlineExceeded",
    "ServiceCrash",
]
