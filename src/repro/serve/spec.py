"""Scenario job specifications and the job state machine.

A :class:`JobSpec` is the durable unit of work the scenario service
accepts: a config delta onto the service's base :class:`AP3ESMConfig`,
an optional seeded initial-condition perturbation, a coupling budget,
and retry/deadline policy.  Specs are plain JSON-serializable data —
they live in the journal, so they must survive a service restart
byte-identically.

Config-delta *keys* are shape-checked at submit time (strings), but
whether they name real ``AP3ESMConfig`` fields with valid values is
deliberately deferred to run time: a bad delta is the canonical
"poisoned spec" that exercises the scheduler's failure-count circuit
breaker instead of being rejected at the door.

State machine (every transition is one journal record)::

    queued ──► running ──► completed
                 │ ▲
                 │ └── interruption (worker kill / service crash / reap):
                 │     requeued with NO failure penalty
                 ├──► queued      (failure, retries left — backoff applies)
                 ├──► failed      (failure, max_attempts == 1)
                 └──► quarantined (failures >= max_attempts > 1 — the
                                   circuit breaker on poisoned specs)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "JOB_STATES",
    "JobSpec",
    "JobRecord",
    "ServeError",
    "ServeBackpressure",
    "JobDeadlineExceeded",
    "ServiceCrash",
]

#: The closed set of journaled job states.
JOB_STATES = ("queued", "running", "completed", "failed", "quarantined")

#: States a job never leaves (the scheduler stops dispatching them).
TERMINAL_STATES = ("completed", "failed", "quarantined")

_JOB_ID = re.compile(r"^[A-Za-z0-9._-]+$")


class ServeError(RuntimeError):
    """Base class for scenario-service errors."""


class ServeBackpressure(ServeError):
    """Admission control rejected a submit: the queue is full.

    The spec was NOT journaled — the caller owns resubmission."""

    def __init__(self, job_id: str, depth: int, limit: int) -> None:
        super().__init__(
            f"job {job_id!r} rejected: {depth} job(s) already queued or "
            f"running (admission limit {limit})"
        )
        self.job_id = job_id
        self.depth = depth
        self.limit = limit


class JobDeadlineExceeded(ServeError):
    """An attempt ran past its per-job wall-clock deadline.  Counted as
    a *failure* (it burns an attempt), unlike an interruption."""

    def __init__(self, job_id: str, deadline_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"job {job_id!r} exceeded its {deadline_s:g}s deadline "
            f"({elapsed_s:.3f}s elapsed)"
        )
        self.job_id = job_id
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class ServiceCrash(BaseException):
    """A simulated whole-service SIGKILL (the chaos harness's journal
    crash hooks raise it).  Derives from ``BaseException`` so no retry
    or circuit-breaker handler can swallow it — exactly like a real
    SIGKILL, it takes the service down through every layer."""

    def __init__(self, phase: str, append_index: int) -> None:
        super().__init__(
            f"simulated service crash {phase} journal append {append_index}"
        )
        self.phase = phase
        self.append_index = append_index


@dataclass(frozen=True)
class JobSpec:
    """One durable scenario job."""

    job_id: str
    #: Coupling steps to run (the job's size).
    couplings: int = 2
    #: ``dataclasses.replace`` delta onto the service's base AP3ESMConfig.
    #: Keys are validated as strings here; field validity is a run-time
    #: concern (see module docstring).
    config_delta: Mapping[str, object] = field(default_factory=dict)
    #: 1 = solo AP3ESM; > 1 = an EnsembleRun of this many members.
    members: int = 1
    #: Seeded IC perturbation: solo jobs perturb the atmosphere
    #: temperature columns from the ("serve.job", seed, job_id) stream;
    #: ensemble jobs pass both straight to EnsembleConfig.
    perturb_seed: int = 0
    perturb_amplitude: float = 0.0
    #: Stack member physics into one suite call (ensemble jobs only).
    batch_physics: bool = False
    #: Run attempts before the circuit breaker opens (>= 1).
    max_attempts: int = 3
    #: Per-attempt wall-clock deadline (None = unbounded).
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.job_id, str) or not _JOB_ID.match(self.job_id):
            raise ValueError(
                f"job_id must match [A-Za-z0-9._-]+, got {self.job_id!r}"
            )
        if not isinstance(self.couplings, int) or isinstance(self.couplings, bool) \
                or self.couplings < 1:
            raise ValueError(f"couplings must be a positive integer, "
                             f"got {self.couplings!r}")
        if not isinstance(self.members, int) or isinstance(self.members, bool) \
                or self.members < 1:
            raise ValueError(f"members must be a positive integer, "
                             f"got {self.members!r}")
        if not isinstance(self.config_delta, Mapping):
            raise ValueError("config_delta must be a mapping")
        bad = [k for k in self.config_delta if not isinstance(k, str)]
        if bad:
            raise ValueError(f"config_delta keys must be strings, got {bad!r}")
        # Freeze the mapping into a plain dict so the spec hashes/serializes
        # deterministically regardless of what the caller handed in.
        object.__setattr__(self, "config_delta", dict(self.config_delta))
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive or None")

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "couplings": self.couplings,
            "config_delta": dict(self.config_delta),
            "members": self.members,
            "perturb_seed": self.perturb_seed,
            "perturb_amplitude": self.perturb_amplitude,
            "batch_physics": self.batch_physics,
            "max_attempts": self.max_attempts,
            "deadline_s": self.deadline_s,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"job spec must be an object, "
                             f"got {type(data).__name__}")
        known = {
            "job_id", "couplings", "config_delta", "members",
            "perturb_seed", "perturb_amplitude", "batch_physics",
            "max_attempts", "deadline_s",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job spec keys: {sorted(unknown)}")
        return JobSpec(**dict(data))


@dataclass
class JobRecord:
    """The journaled state of one job (what replay reconstructs)."""

    spec: JobSpec
    state: str = "queued"
    #: Run attempts started (interruptions included — they cost a
    #: dispatch, just not a failure).
    attempts: int = 0
    #: Failures counted toward the circuit breaker (interruptions are
    #: NOT failures).
    failures: int = 0
    #: Submit order, used for FIFO dispatch across restarts.
    submitted_seq: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "failures": self.failures,
            "submitted_seq": self.submitted_seq,
            "error": self.error,
            "result": self.result,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "JobRecord":
        return JobRecord(
            spec=JobSpec.from_dict(data["spec"]),
            state=data["state"],
            attempts=int(data["attempts"]),
            failures=int(data["failures"]),
            submitted_seq=int(data.get("submitted_seq", 0)),
            error=data.get("error"),
            result=data.get("result"),
        )
