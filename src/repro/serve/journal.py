"""The durable job journal: an append-only, CRC'd JSONL log.

Every job-table mutation is ONE appended record; the in-memory table is
always reconstructible by replaying the journal from the top, so a
service killed at ANY instant restarts into a consistent state:

* **Record format** — one JSON object per line::

      {"v": 1, "seq": N, "crc": C, "body": {...}}

  where ``C`` is the crc32 of the canonical (sorted-keys, tight-
  separator) JSON encoding of ``body``.  ``seq`` is strictly monotone.
* **Torn-tail tolerance** — replay stops at the first record that fails
  to parse, fails its CRC, or breaks the seq order: a write cut short by
  SIGKILL loses at most the record being appended, never the prefix.
* **Idempotent replay** — state records carry the job's *absolute* state
  (state + attempts + failures + result), not increments, and records
  with a seq at or below the last applied one are skipped — replaying a
  journal with a duplicated or re-read suffix converges to the same
  table as replaying it once.
* **Segment rotation** — past ``rotate_every`` appends the journal is
  compacted: one snapshot record holding the full table is written to a
  temp file and ``os.replace``'d over the journal, so the log stays
  bounded and the swap is atomic (a crash leaves either the old full
  journal or the new compacted one, never a mix).
* **Exclusive** — the store holds a non-blocking ``flock`` on
  ``<root>/.serve.lock`` for its lifetime: two services cannot share one
  journal, and a SIGKILL'd holder releases the lock with its fd.

Chaos hooks: ``crash_at=("before"|"after", k)`` raises
:class:`~repro.serve.spec.ServiceCrash` immediately before (after) the
k-th append this process performs — the deterministic stand-in for a
SIGKILL landing between any two journal records.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

try:  # POSIX; exclusivity degrades to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .spec import JobRecord, JobSpec, ServeError, ServiceCrash

__all__ = ["JobStore"]

_JOURNAL = "journal.jsonl"
_LOCKFILE = ".serve.lock"
_VERSION = 1


def _canonical(body: Dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _crc(body: Dict) -> int:
    return zlib.crc32(_canonical(body).encode("utf-8"))


class JobStore:
    """One journal directory: the durable job table plus its log."""

    def __init__(
        self,
        root: Union[str, Path],
        rotate_every: int = 500,
        obs=None,
        crash_at: Optional[Tuple[str, int]] = None,
    ) -> None:
        if rotate_every < 2:
            raise ValueError("rotate_every must be >= 2")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _JOURNAL
        self.rotate_every = rotate_every
        self.obs = obs
        self.crash_at = crash_at
        self.jobs: Dict[str, JobRecord] = {}
        self._seq = 0
        #: Appends performed by THIS process (the chaos crash-hook index).
        self.appends = 0
        self._since_snapshot = 0
        self._lock_fd: Optional[int] = None
        self._acquire_lock()
        self.replay()

    # -- exclusivity -------------------------------------------------------

    def _acquire_lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        fd = os.open(self.root / _LOCKFILE, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise ServeError(
                f"journal {self.root} is already owned by a live service "
                "(flock held); refusing to double-serve one job table"
            ) from None
        self._lock_fd = fd

    def close(self) -> None:
        """Release the journal lock (a real service exiting cleanly, or
        the chaos harness standing in for kernel fd cleanup after a
        simulated SIGKILL — nothing is flushed or written here)."""
        if self._lock_fd is not None:
            os.close(self._lock_fd)
            self._lock_fd = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ------------------------------------------------------------

    def replay(self) -> int:
        """(Re)build the job table from the journal; returns the number
        of records applied.  Tolerates a torn tail and duplicated
        records (see module docstring); never raises on a damaged
        suffix — the valid prefix wins."""
        self.jobs = {}
        self._seq = 0
        self._since_snapshot = 0
        applied = 0
        if not self.path.exists():
            return 0
        with self.path.open("r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    if rec["v"] != _VERSION:
                        break
                    body = rec["body"]
                    if rec["crc"] != _crc(body):
                        break
                    seq = int(rec["seq"])
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    break  # torn tail: the valid prefix is the journal
                if seq <= self._seq:
                    continue  # duplicated record: idempotent replay skips
                if seq != self._seq + 1 and self._seq != 0:
                    break  # a gap means a damaged suffix
                self._seq = seq
                self._apply(body)
                applied += 1
                self._since_snapshot += 1
        if self.obs is not None:
            self.obs.counter("serve.journal.replayed_records").inc(applied)
        return applied

    def _apply(self, body: Dict) -> None:
        event = body.get("event")
        if event == "submit":
            spec = JobSpec.from_dict(body["spec"])
            self.jobs[spec.job_id] = JobRecord(
                spec=spec, submitted_seq=int(body.get("submitted_seq", self._seq))
            )
        elif event == "state":
            rec = self.jobs.get(body["job_id"])
            if rec is None:
                return  # state for an unknown job: tolerated, not fatal
            rec.state = body["state"]
            rec.attempts = int(body["attempts"])
            rec.failures = int(body["failures"])
            rec.error = body.get("error")
            rec.result = body.get("result")
        elif event == "snapshot":
            self.jobs = {
                job_id: JobRecord.from_dict(data)
                for job_id, data in body["jobs"].items()
            }
            self._since_snapshot = 0
        # Unknown events are skipped: a newer service's records must not
        # brick an older replayer.

    # -- append ------------------------------------------------------------

    def _append(self, body: Dict) -> None:
        if self.crash_at == ("before", self.appends):
            raise ServiceCrash("before", self.appends)
        self._seq += 1
        rec = {"v": _VERSION, "seq": self._seq, "crc": _crc(body), "body": body}
        with self.path.open("a", encoding="utf-8") as f:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
            f.flush()
        self._apply(body)
        if self.obs is not None:
            self.obs.counter("serve.journal.records").inc()
        index = self.appends
        self.appends += 1
        self._since_snapshot += 1
        if self.crash_at == ("after", index):
            raise ServiceCrash("after", index)
        if self._since_snapshot >= self.rotate_every:
            self._rotate()

    def _rotate(self) -> None:
        """Compact the journal to one snapshot record, atomically."""
        self._seq += 1
        body = {
            "event": "snapshot",
            "jobs": {job_id: rec.to_dict() for job_id, rec in self.jobs.items()},
        }
        rec = {"v": _VERSION, "seq": self._seq, "crc": _crc(body), "body": body}
        tmp = self.path.with_suffix(".jsonl.tmp")
        tmp.write_text(json.dumps(rec, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
        self._since_snapshot = 0
        if self.obs is not None:
            self.obs.counter("serve.journal.rotations").inc()

    # -- mutations ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        if spec.job_id in self.jobs:
            raise ServeError(f"job {spec.job_id!r} already exists "
                             f"(state {self.jobs[spec.job_id].state!r})")
        self._append({
            "event": "submit",
            "spec": spec.to_dict(),
            "submitted_seq": self._seq + 1,
        })
        return self.jobs[spec.job_id]

    def update(
        self,
        job_id: str,
        state: str,
        attempts: Optional[int] = None,
        failures: Optional[int] = None,
        error: Optional[str] = None,
        result: Optional[Dict[str, object]] = None,
    ) -> JobRecord:
        """Journal a job's new ABSOLUTE state (counters default to the
        current values, so callers only name what changed)."""
        rec = self.jobs[job_id]
        self._append({
            "event": "state",
            "job_id": job_id,
            "state": state,
            "attempts": rec.attempts if attempts is None else attempts,
            "failures": rec.failures if failures is None else failures,
            "error": error,
            "result": result,
        })
        return self.jobs[job_id]

    # -- queries -----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.jobs.values():
            out[rec.state] = out.get(rec.state, 0) + 1
        return out

    def queued_jobs(self) -> List[JobRecord]:
        """Dispatchable jobs in FIFO submit order."""
        return sorted(
            (r for r in self.jobs.values() if r.state == "queued"),
            key=lambda r: r.submitted_seq,
        )

    @property
    def depth(self) -> int:
        """Jobs occupying the service (queued + running) — what
        admission control bounds."""
        return sum(
            1 for r in self.jobs.values() if r.state in ("queued", "running")
        )
