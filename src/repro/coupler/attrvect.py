"""AttrVect: MCT's attribute vector — named fields over local grid points.

The coupler moves AttrVects, not raw arrays: every exchanged bundle is a
(field x point) block with a field registry attached, which is what lets
§5.2.4's "remove the unnecessary communication variables that are
registered in MCT and are not used" pruning shrink messages without
touching component code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["AttrVect"]


@dataclass
class AttrVect:
    """Named real fields over ``lsize`` local points (row per field)."""

    fields: List[str]
    data: np.ndarray  # (n_fields, lsize)

    def __post_init__(self) -> None:
        self.data = np.atleast_2d(np.asarray(self.data, dtype=np.float64))
        if len(self.fields) != self.data.shape[0]:
            raise ValueError("one data row per field required")
        if len(set(self.fields)) != len(self.fields):
            raise ValueError("duplicate field names")
        self._index = {name: i for i, name in enumerate(self.fields)}

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def zeros(fields: Sequence[str], lsize: int) -> "AttrVect":
        return AttrVect(list(fields), np.zeros((len(fields), lsize)))

    @staticmethod
    def from_dict(values: Dict[str, np.ndarray]) -> "AttrVect":
        names = list(values.keys())
        data = np.stack([np.asarray(values[n], dtype=np.float64) for n in names])
        return AttrVect(names, data)

    # -- access --------------------------------------------------------------------

    @property
    def lsize(self) -> int:
        return self.data.shape[1]

    @property
    def n_fields(self) -> int:
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def get(self, name: str) -> np.ndarray:
        try:
            return self.data[self._index[name]]
        except KeyError:
            raise KeyError(f"no field {name!r}; have {self.fields}") from None

    def set(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.lsize,):
            raise ValueError(f"expected shape ({self.lsize},), got {values.shape}")
        self.data[self._index[name]] = values

    def to_dict(self) -> Dict[str, np.ndarray]:
        return {name: self.data[i].copy() for i, name in enumerate(self.fields)}

    # -- transforms -------------------------------------------------------------------

    def subset(self, names: Iterable[str]) -> "AttrVect":
        """A view-free AttrVect with only the requested fields (pruning)."""
        names = list(names)
        missing = [n for n in names if n not in self._index]
        if missing:
            raise KeyError(f"fields not present: {missing}")
        rows = [self._index[n] for n in names]
        return AttrVect(names, self.data[rows].copy())

    def permute(self, perm: np.ndarray) -> "AttrVect":
        """Reorder points (the rearranger's local gather step)."""
        perm = np.asarray(perm, dtype=np.int64)
        return AttrVect(list(self.fields), self.data[:, perm].copy())

    def copy(self) -> "AttrVect":
        return AttrVect(list(self.fields), self.data.copy())
