"""CouplerCache: content-addressed offline GSMap/Router construction.

§5.2.4: "the two data structures are generated **offline** as a
preprocessing step".  The cache makes that offline step automatic and
safe: every entry is keyed by a SHA-256 over the *content* that
determines the table — the grid ids and the full owner arrays of the
decompositions involved — so a repeated ``run-coupled`` invocation
re-loads the precomputed Router instead of paying :meth:`Router.build`,
while any change to the decomposition (different layout, different grid,
or an elastic shrink after a rank failure) changes the key and
transparently misses to a fresh build.  A stale table can never be
served: the key *is* the owner arrays.

Entries are plain ``.npz`` files written via the existing
:meth:`GlobalSegMap.to_file`/:meth:`Router.to_file` persistence, plus a
JSON sidecar recording the build wall-time so warm hits can report
``coupler.cache.build_time_saved``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .gsmap import GlobalSegMap
from .router import Router

__all__ = ["CouplerCache"]


def _content_key(kind: str, *parts) -> str:
    """SHA-256 over grid ids and owner arrays; ndarray parts hash their
    raw bytes (dtype-normalised), strings hash utf-8."""
    h = hashlib.sha256()
    h.update(kind.encode())
    for part in parts:
        h.update(b"\x00")
        if isinstance(part, np.ndarray):
            h.update(np.ascontiguousarray(part, dtype=np.int64).tobytes())
        else:
            h.update(str(part).encode())
    return h.hexdigest()[:24]


@dataclass
class CouplerCache:
    """Directory of content-addressed GSMap/Router artifacts.

    ``get_router`` / ``get_gsmap`` either load a prior build (hit) or
    build-and-persist (miss).  Stats accumulate on the instance and, when
    an ``obs`` handle is attached, as ``coupler.cache.{hits,misses}``
    counters and the ``coupler.cache.build_time_saved`` gauge (seconds of
    construction skipped by warm hits).
    """

    root: Union[str, Path]
    obs: Optional[object] = None
    hits: int = 0
    misses: int = 0
    build_time_saved_s: float = 0.0
    _index: Dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def router_key(
        src_grid: str, dst_grid: str,
        src_owners: np.ndarray, dst_owners: np.ndarray,
    ) -> str:
        """Content address of a Router: both grid ids + both owner arrays.
        An elastic shrink rewrites the owner arrays, so the repaired
        decomposition can never resolve to the pre-failure table."""
        return _content_key("router", src_grid, dst_grid, src_owners, dst_owners)

    @staticmethod
    def gsmap_key(grid: str, owners: np.ndarray) -> str:
        return _content_key("gsmap", grid, owners)

    # -- lookup-or-build -----------------------------------------------------

    def get_router(
        self,
        src_grid: str,
        dst_grid: str,
        src: GlobalSegMap,
        dst: GlobalSegMap,
    ) -> Router:
        """The cached equivalent of ``Router.build(src, dst)``."""
        key = self.router_key(
            src_grid, dst_grid, src.owner_array(), dst.owner_array()
        )
        path = self.root / f"router-{key}.npz"
        if path.exists():
            return self._hit(key, path, Router.from_file)
        t0 = time.perf_counter()
        router = Router.build(src, dst)
        self._miss(key, path, router.to_file, time.perf_counter() - t0)
        return router

    def get_gsmap(self, grid: str, owners: np.ndarray) -> GlobalSegMap:
        """The cached equivalent of ``GlobalSegMap.from_owners(owners)``."""
        key = self.gsmap_key(grid, owners)
        path = self.root / f"gsmap-{key}.npz"
        if path.exists():
            return self._hit(key, path, GlobalSegMap.from_file)
        t0 = time.perf_counter()
        gsmap = GlobalSegMap.from_owners(owners)
        self._miss(key, path, gsmap.to_file, time.perf_counter() - t0)
        return gsmap

    # -- bookkeeping ---------------------------------------------------------

    def _hit(self, key: str, path: Path, loader):
        self.hits += 1
        saved = self._recorded_build_time(path)
        self.build_time_saved_s += saved
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.counter("coupler.cache.hits").inc()
            self.obs.gauge("coupler.cache.build_time_saved").set(
                self.build_time_saved_s
            )
        return loader(path)

    def _miss(self, key: str, path: Path, saver, build_s: float) -> None:
        self.misses += 1
        saver(path)
        path.with_suffix(".json").write_text(
            json.dumps({"key": key, "build_s": build_s})
        )
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.counter("coupler.cache.misses").inc()

    def _recorded_build_time(self, path: Path) -> float:
        sidecar = path.with_suffix(".json")
        if sidecar.exists():
            try:
                return float(json.loads(sidecar.read_text()).get("build_s", 0.0))
            except (json.JSONDecodeError, TypeError, ValueError):
                return 0.0
        return 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "build_time_saved_s": self.build_time_saved_s,
            "entries": float(len(list(self.root.glob("*.npz")))),
        }
