"""CoupledExchange: route driver field handoffs through pruned AttrVects.

Before this layer the AP3ESM driver handed raw dicts between components,
so :meth:`FieldRegistry.pruned` was *computed* but never *applied* — the
unused fields still travelled.  CoupledExchange closes that gap: every
coupling-path handoff (a2x, x2o, o2x, i2x) is packed into an
:class:`AttrVect` in registration order, optionally pruned to the used
subset (§5.2.4: "remove the unnecessary communication variables that are
registered in MCT and are not used"), and unpacked back to a dict with
each field's original dtype and shape restored.

The round trip is exact: float64 fields pass through unchanged and the
bool ``freezing`` flag survives the float64 AttrVect representation
bit-for-bit (0.0/1.0 are exact), so a run with pruning *off* is bitwise
identical to the pre-exchange driver, and a run with pruning *on* is
bitwise identical on every surviving field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .attrvect import AttrVect
from .fields import FieldRegistry

__all__ = ["CoupledExchange"]


@dataclass
class CoupledExchange:
    """Applies the field registry to every coupling-path handoff."""

    registry: FieldRegistry
    prune: bool = False
    obs: Optional[object] = None
    #: Per-path running totals for :meth:`report`.
    _traffic: Dict[str, Dict[str, float]] = field(default_factory=dict, repr=False)

    def transfer(self, path: str, values: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Move one bundle across a coupling path.

        ``values`` must contain every *used* field registered on ``path``
        and nothing unregistered; a registered-but-unused field may be
        absent (e.g. an optional diagnostic the producer did not emit —
        it would not survive pruning anyway).  Returns the present fields
        that survive pruning (all present fields when ``prune`` is off),
        dtype- and shape-preserved.
        """
        if path not in self.registry.registered:
            raise KeyError(
                f"unknown coupling path {path!r}; "
                f"registered: {sorted(self.registry.registered)}"
            )
        registered = self.registry.registered[path]
        unknown = sorted(set(values) - set(registered))
        if unknown:
            raise KeyError(f"bundle on {path!r} has unregistered fields {unknown}")
        missing_used = [n for n in self.registry.pruned(path) if n not in values]
        if missing_used:
            raise KeyError(f"bundle on {path!r} is missing used fields {missing_used}")
        base = self.registry.pruned(path) if self.prune else registered
        keep = [n for n in base if n in values]

        shapes: Dict[str, tuple] = {}
        dtypes: Dict[str, np.dtype] = {}
        packed: Dict[str, np.ndarray] = {}
        for name in keep:
            arr = np.asarray(values[name])
            shapes[name] = arr.shape
            dtypes[name] = arr.dtype
            packed[name] = arr.astype(np.float64, copy=False).ravel()
        av = (
            AttrVect.from_dict(packed)
            if keep
            else AttrVect([], np.zeros((0, 0)))
        )

        n_present = sum(1 for n in registered if n in values)
        self._account(path, av, n_registered=n_present)

        return {
            name: av.get(name).reshape(shapes[name]).astype(dtypes[name], copy=False)
            for name in keep
        }

    def _account(self, path: str, av: AttrVect, n_registered: int) -> None:
        lsize = av.lsize
        pruned_fields = n_registered - av.n_fields
        bytes_saved = pruned_fields * lsize * 8
        t = self._traffic.setdefault(
            path,
            {"transfers": 0.0, "fields": 0.0, "fields_pruned": 0.0,
             "bytes": 0.0, "bytes_saved": 0.0},
        )
        t["transfers"] += 1
        t["fields"] += av.n_fields
        t["fields_pruned"] += pruned_fields
        t["bytes"] += av.nbytes
        t["bytes_saved"] += bytes_saved
        obs = self.obs
        if obs is not None and getattr(obs, "enabled", False):
            obs.counter("coupler.exchange.transfers").inc()
            obs.counter("coupler.exchange.fields").inc(av.n_fields)
            obs.counter("coupler.exchange.bytes").inc(av.nbytes)
            if pruned_fields:
                obs.counter("coupler.exchange.fields_pruned").inc(pruned_fields)
                obs.counter("coupler.exchange.bytes_saved").inc(bytes_saved)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-path traffic totals since construction (what moved, what
        pruning removed)."""
        return {path: dict(t) for path, t in sorted(self._traffic.items())}
