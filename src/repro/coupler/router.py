"""Router: MCT's M-to-N transfer table between two GSMaps.

"Given two decompositions specified in two GSMaps, the Router table can
easily build a mapping between the location of one grid point on a
processor and its location on another processor" (§5.2.4).  Construction
intersects every source rank's index set with every destination rank's —
the O(M x N)-ish work and memory that motivated the paper's **offline**
precomputation, which :meth:`Router.to_file`/:meth:`Router.from_file`
provide (and :class:`repro.coupler.cache.CouplerCache` automates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from .gsmap import GlobalSegMap

__all__ = ["Router"]


@dataclass
class Router:
    """Per (src_pe, dst_pe) transfer lists in *local* index coordinates.

    ``send[(p, q)]`` holds the local positions (into rank p's ascending
    owned-index order) of the values p must send to q; ``recv[(p, q)]``
    the local positions on q where they land, in matching order.
    """

    src_gsize: int
    dst_gsize: int
    send: Dict[Tuple[int, int], np.ndarray]
    recv: Dict[Tuple[int, int], np.ndarray]

    # -- construction --------------------------------------------------------------

    @staticmethod
    def build(src: GlobalSegMap, dst: GlobalSegMap) -> "Router":
        """Intersect the two decompositions (identity grid mapping: the
        same global index space on both sides, as MCT requires — grid
        interpolation is a separate sparse-matrix step)."""
        if src.gsize != dst.gsize:
            raise ValueError(
                "Router requires both GSMaps over the same global space "
                f"(got {src.gsize} vs {dst.gsize})"
            )
        send: Dict[Tuple[int, int], np.ndarray] = {}
        recv: Dict[Tuple[int, int], np.ndarray] = {}
        src_owner = src.owner_array()
        dst_owner = dst.owner_array()
        # Local position of each global index on its owner.
        src_pos = _local_positions(src)
        dst_pos = _local_positions(dst)
        both = (src_owner >= 0) & (dst_owner >= 0)
        pairs = np.stack([src_owner[both], dst_owner[both]], axis=1)
        gidx = np.flatnonzero(both)
        # Group by (src_pe, dst_pe).
        order = np.lexsort((gidx, pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order]
        gidx = gidx[order]
        if len(gidx):
            boundaries = np.flatnonzero(np.any(np.diff(pairs, axis=0) != 0, axis=1)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [len(gidx)]])
            for s, e in zip(starts, ends):
                p, q = int(pairs[s, 0]), int(pairs[s, 1])
                g = gidx[s:e]
                send[(p, q)] = src_pos[g]
                recv[(p, q)] = dst_pos[g]
        return Router(src.gsize, dst.gsize, send, recv)

    # -- queries ------------------------------------------------------------------------

    def partners_of_source(self, pe: int) -> List[int]:
        return sorted(q for (p, q) in self.send if p == pe)

    def partners_of_destination(self, pe: int) -> List[int]:
        return sorted(p for (p, q) in self.recv if q == pe)

    @property
    def n_pairs(self) -> int:
        return len(self.send)

    def total_points(self) -> int:
        return int(sum(len(v) for v in self.send.values()))

    def memory_bytes(self) -> int:
        return int(
            sum(v.nbytes for v in self.send.values())
            + sum(v.nbytes for v in self.recv.values())
        )

    # -- application ---------------------------------------------------------------------

    def redistribute(
        self,
        src_shards: Dict[int, np.ndarray],
        dst_sizes: Dict[int, int],
    ) -> Dict[int, np.ndarray]:
        """Apply the transfer table driver-side: move values from per-rank
        source shards (each in the owner's ascending local order) into
        per-rank destination shards.

        This is the data-movement step of elastic re-decomposition: the
        Router built between the old and the repaired GSMap *is* the
        migration plan for survivor-held state.  Positions not covered by
        any transfer pair (holes on the source side) are left NaN so a
        partial redistribute is detectable.
        """
        out: Dict[int, np.ndarray] = {
            q: np.full(n, np.nan, dtype=np.float64) for q, n in dst_sizes.items()
        }
        for (p, q), spos in self.send.items():
            shard = src_shards[p]
            out[q][self.recv[(p, q)]] = np.asarray(shard, dtype=np.float64)[spos]
        return out

    # -- offline precompute ----------------------------------------------------------------

    def to_file(self, path: Union[str, Path]) -> None:
        payload: Dict[str, np.ndarray] = {
            "meta": np.array([self.src_gsize, self.dst_gsize], dtype=np.int64)
        }
        for (p, q), idx in self.send.items():
            payload[f"s_{p}_{q}"] = idx
        for (p, q), idx in self.recv.items():
            payload[f"r_{p}_{q}"] = idx
        np.savez_compressed(path, **payload)

    @staticmethod
    def from_file(path: Union[str, Path]) -> "Router":
        send: Dict[Tuple[int, int], np.ndarray] = {}
        recv: Dict[Tuple[int, int], np.ndarray] = {}
        with np.load(path) as data:
            meta = data["meta"]
            for key in data.files:
                if key == "meta":
                    continue
                kind, p, q = key.split("_")
                target = send if kind == "s" else recv
                target[(int(p), int(q))] = data[key]
        return Router(int(meta[0]), int(meta[1]), send, recv)


def _local_positions(gsmap: GlobalSegMap) -> np.ndarray:
    """For every global index, its position in the owner's ascending local
    order (-1 in holes)."""
    owner = gsmap.owner_array()
    pos = np.full(gsmap.gsize, -1, dtype=np.int64)
    for pe in range(gsmap.n_pes):
        mine = np.flatnonzero(owner == pe)
        pos[mine] = np.arange(len(mine))
    return pos
