"""Rearranger: execute a Router transfer over the simulated MPI runtime.

Two implementations, exactly the before/after of §5.2.4:

* ``alltoall`` — "the original all-to-all MPI was inefficient": every rank
  participates in a dense collective, sending (mostly empty) buffers to
  every other rank;
* ``p2p`` — "we implemented non-blocking point-to-point MPI, which
  overlaps communication and computation": only actual Router partners
  exchange messages, posted as isend/irecv.

Both produce identical results (tested); the traffic ledger shows the
difference the machine model prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal

import numpy as np

from ..parallel.comm import Request, SimComm
from .attrvect import AttrVect
from .router import Router

__all__ = ["Rearranger"]

_TAG = 7300


@dataclass
class Rearranger:
    """Moves AttrVect data from a source to a destination decomposition."""

    router: Router
    method: Literal["p2p", "alltoall"] = "p2p"

    def __post_init__(self) -> None:
        if self.method not in ("p2p", "alltoall"):
            raise ValueError("method must be 'p2p' or 'alltoall'")

    def rearrange(
        self,
        comm: SimComm,
        src_av: AttrVect | None,
        dst_lsize: int,
    ) -> AttrVect:
        """Run the transfer on this rank.

        ``src_av`` is this rank's source-side AttrVect (None if this rank
        owns no source points); returns the destination-side AttrVect of
        ``dst_lsize`` points (zeros where the Router delivers nothing).
        Field names are agreed via rank-0 broadcast, like MCT's list sync.
        """
        fields = comm.bcast(src_av.fields if src_av is not None else None, root=0)
        if fields is None:
            raise ValueError("rank 0 must hold a source AttrVect")
        n_fields = len(fields)
        me = comm.rank
        out = np.zeros((n_fields, dst_lsize))

        sends = {q: idx for (p, q), idx in self.router.send.items() if p == me}
        recvs = {p: idx for (p, q), idx in self.router.recv.items() if q == me}

        if self.method == "p2p":
            reqs = []
            for q, idx in sorted(sends.items()):
                payload = src_av.data[:, idx] if src_av is not None else np.zeros((n_fields, 0))
                if q == me:
                    out[:, recvs[me]] = payload
                else:
                    reqs.append(comm.isend(payload, q, tag=_TAG))
            for p, idx in sorted(recvs.items()):
                if p == me:
                    continue
                out[:, idx] = comm.recv(source=p, tag=_TAG)
            Request.waitall(reqs)
        else:
            buffers = []
            for q in range(comm.size):
                idx = sends.get(q)
                if idx is None or src_av is None:
                    buffers.append(np.zeros((n_fields, 0)))
                else:
                    buffers.append(src_av.data[:, idx])
            received = comm.alltoall(buffers)
            for p, payload in enumerate(received):
                idx = recvs.get(p)
                if idx is not None and payload.shape[1]:
                    out[:, idx] = payload
        return AttrVect(list(fields), out)

    # -- analytics ---------------------------------------------------------------

    def message_counts(self, n_ranks: int) -> Dict[str, float]:
        """Messages on the critical path for each method (the machine
        model's latency term): dense all-to-all posts n-1 per rank; sparse
        p2p posts only real partners."""
        per_rank_partners = np.zeros(n_ranks)
        for (p, q) in self.router.send:
            if p != q:
                per_rank_partners[p] += 1
        return {
            "alltoall_messages_per_rank": float(n_ranks - 1),
            "p2p_messages_per_rank_max": float(per_rank_partners.max()) if n_ranks else 0.0,
            "p2p_messages_per_rank_mean": float(per_rank_partners.mean()) if n_ranks else 0.0,
        }
