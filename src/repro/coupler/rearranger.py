"""Rearranger: execute a Router transfer over the simulated MPI runtime.

Two methods, exactly the before/after of §5.2.4:

* ``alltoall`` — "the original all-to-all MPI was inefficient": every rank
  participates in a dense collective, sending (mostly empty) buffers to
  every other rank;
* ``p2p`` — "we implemented non-blocking point-to-point MPI, which
  overlaps communication and computation": only actual Router partners
  exchange messages, posted as isend/irecv.

Orthogonally, ``granularity`` selects the message layout on the p2p
path — the second before/after of the coupler fast path:

* ``"field"`` — MCT's legacy layout: one message per *field* per partner
  (an AttrVect of n fields posts n sends to each destination rank);
* ``"bundle"`` (default) — all fields bound for one partner travel in a
  single 2-D block per edge.

:meth:`plan` compiles the next step up: a
:class:`~repro.coupler.plan.RearrangePlan` coalescing *multiple* bundles
into one message per edge, frozen once per Router and reused every
coupling step.  All layouts produce identical results (tested); the
traffic ledger shows the difference the machine model prices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Literal, Optional

import numpy as np

from ..parallel.comm import CommTransientError, Request, SimComm
from .attrvect import AttrVect
from .router import Router

__all__ = ["Rearranger"]

_TAG = 7300


@dataclass
class Rearranger:
    """Moves AttrVect data from a source to a destination decomposition.

    Resilience knobs (all default-off, adding nothing to the no-fault
    path): ``max_retries`` re-posts a send that failed with
    :class:`~repro.parallel.comm.CommTransientError` (backing off
    ``retry_backoff_s * 2^(attempt-1)`` between attempts) — a retried
    success is bit-identical to an unfaulted transfer since the buffered
    payload is unchanged; ``recv_timeout`` bounds each receive so a dead
    peer surfaces as a structured
    :class:`~repro.parallel.comm.CommTimeoutError` naming the (src, dst,
    tag) edge instead of blocking on the world's long deadlock guard.
    """

    router: Router
    method: Literal["p2p", "alltoall"] = "p2p"
    #: Message layout on the p2p path: ``"bundle"`` ships one 2-D block
    #: per partner; ``"field"`` reproduces MCT's legacy one-message-per-
    #: field-per-partner layout (the un-coalesced baseline the benchmarks
    #: compare against).
    granularity: Literal["bundle", "field"] = "bundle"
    max_retries: int = 0
    retry_backoff_s: float = 0.0
    recv_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.method not in ("p2p", "alltoall"):
            raise ValueError("method must be 'p2p' or 'alltoall'")
        if self.granularity not in ("bundle", "field"):
            raise ValueError("granularity must be 'bundle' or 'field'")
        if self.max_retries < 0 or self.retry_backoff_s < 0:
            raise ValueError("max_retries and retry_backoff_s must be >= 0")

    def plan(self, bundles) -> "RearrangePlan":
        """Compile a :class:`~repro.coupler.plan.RearrangePlan` over this
        rearranger's Router, inheriting its resilience knobs.  ``bundles``
        maps bundle names to field lists (see ``RearrangePlan.compile``)."""
        from .plan import RearrangePlan

        return RearrangePlan.compile(
            self.router,
            bundles,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            recv_timeout=self.recv_timeout,
        )

    def _isend_with_retry(self, comm: SimComm, payload, dest: int, obs, tag: int = _TAG) -> Request:
        """Post a send, retrying transient failures within budget."""
        attempt = 0
        while True:
            try:
                return comm.isend(payload, dest, tag=tag)
            except CommTransientError:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                if obs is not None:
                    obs.counter("resilience.retries").inc()
                delay = self.retry_backoff_s * (2.0 ** (attempt - 1))
                if delay > 0:
                    time.sleep(delay)

    def rearrange(
        self,
        comm: SimComm,
        src_av: AttrVect | None,
        dst_lsize: int,
        obs=None,
    ) -> AttrVect:
        """Run the transfer on this rank.

        ``src_av`` is this rank's source-side AttrVect (None if this rank
        owns no source points); returns the destination-side AttrVect of
        ``dst_lsize`` points (zeros where the Router delivers nothing).
        Field names are agreed via rank-0 broadcast, like MCT's list sync.
        A live ``obs`` handle records a span plus this rank's sent
        bytes/messages counters.
        """
        if obs is None or not obs.enabled:
            return self._rearrange(comm, src_av, dst_lsize, None)
        with obs.span(
            "cpl.rearrange",
            method=self.method,
            dst_lsize=dst_lsize,
            rank=comm.rank,
        ):
            return self._rearrange(comm, src_av, dst_lsize, obs)

    def _rearrange(
        self,
        comm: SimComm,
        src_av: AttrVect | None,
        dst_lsize: int,
        obs,
    ) -> AttrVect:
        fields = comm.bcast(src_av.fields if src_av is not None else None, root=0)
        if fields is None:
            raise ValueError("rank 0 must hold a source AttrVect")
        n_fields = len(fields)
        me = comm.rank
        out = np.zeros((n_fields, dst_lsize))
        sent_bytes = 0
        sent_messages = 0

        sends = {q: idx for (p, q), idx in self.router.send.items() if p == me}
        recvs = {p: idx for (p, q), idx in self.router.recv.items() if q == me}

        if self.method == "p2p":
            per_field = self.granularity == "field"
            reqs = []
            for q, idx in sorted(sends.items()):
                payload = src_av.data[:, idx] if src_av is not None else np.zeros((n_fields, 0))
                if q == me:
                    # Local copy.  A router may carry a (me, me) send with
                    # no matching recv entry (e.g. a pruned/hand-built
                    # table); delivering nothing is then correct — the
                    # alltoall path already behaves that way.
                    self_idx = recvs.get(me)
                    if self_idx is not None:
                        out[:, self_idx] = payload
                elif per_field:
                    # Legacy MCT layout: one message per field, each on
                    # its own tag so matching never depends on ordering.
                    for fi in range(n_fields):
                        row = payload[fi]
                        if self.max_retries:
                            reqs.append(
                                self._isend_with_retry(comm, row, q, obs, tag=_TAG + fi)
                            )
                        else:
                            reqs.append(comm.isend(row, q, tag=_TAG + fi))
                        sent_bytes += int(row.nbytes)
                        sent_messages += 1
                else:
                    if self.max_retries:
                        reqs.append(self._isend_with_retry(comm, payload, q, obs))
                    else:
                        reqs.append(comm.isend(payload, q, tag=_TAG))
                    sent_bytes += int(payload.nbytes)
                    sent_messages += 1
            for p, idx in sorted(recvs.items()):
                if p == me:
                    continue
                if per_field:
                    for fi in range(n_fields):
                        out[fi, idx] = comm.recv(
                            source=p, tag=_TAG + fi, timeout=self.recv_timeout
                        )
                else:
                    out[:, idx] = comm.recv(source=p, tag=_TAG, timeout=self.recv_timeout)
            Request.waitall(reqs)
        else:
            buffers = []
            for q in range(comm.size):
                idx = sends.get(q)
                if idx is None or src_av is None:
                    buffers.append(np.zeros((n_fields, 0)))
                else:
                    buffers.append(src_av.data[:, idx])
            sent_bytes = int(sum(b.nbytes for i, b in enumerate(buffers) if i != me))
            sent_messages = comm.size - 1
            received = comm.alltoall(buffers)
            for p, payload in enumerate(received):
                idx = recvs.get(p)
                if idx is not None and payload.shape[1]:
                    out[:, idx] = payload
        if obs is not None:
            obs.counter("cpl.rearrange.calls").inc()
            obs.counter("cpl.rearrange.messages").inc(sent_messages)
            obs.counter("cpl.rearrange.bytes").inc(sent_bytes)
        return AttrVect(list(fields), out)

    # -- analytics ---------------------------------------------------------------

    def message_counts(self, n_ranks: int, n_fields: int = 1) -> Dict[str, float]:
        """Messages on the critical path for each method (the machine
        model's latency term): dense all-to-all posts n-1 sends and n-1
        receives per rank; sparse p2p posts only real partners — counting
        *both* the send side and the recv-side fan-in, since a rank that
        receives from many sources pays those postings too.

        ``n_fields`` prices the granularity axis: the legacy per-field
        layout multiplies every p2p posting by the field count, which the
        bundle layout (and, across bundles, a compiled
        :class:`~repro.coupler.plan.RearrangePlan`) collapses back to one.
        """
        send_partners = np.zeros(n_ranks)
        recv_partners = np.zeros(n_ranks)
        for (p, q) in self.router.send:
            if p != q:
                send_partners[p] += 1
        for (p, q) in self.router.recv:
            if p != q:
                recv_partners[q] += 1
        posts = send_partners + recv_partners
        posts_max = float(posts.max()) if n_ranks else 0.0
        return {
            "alltoall_messages_per_rank": float(2 * (n_ranks - 1)),
            "p2p_messages_per_rank_max": posts_max,
            "p2p_messages_per_rank_mean": float(posts.mean()) if n_ranks else 0.0,
            "p2p_send_partners_max": float(send_partners.max()) if n_ranks else 0.0,
            "p2p_recv_partners_max": float(recv_partners.max()) if n_ranks else 0.0,
            "field_messages_per_rank_max": posts_max * n_fields,
            "bundle_messages_per_rank_max": posts_max,
            "message_reduction": float(n_fields),
        }
