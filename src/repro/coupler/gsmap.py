"""GlobalSegMap (GSMap): MCT's distributed-decomposition descriptor.

A GSMap describes which MPI rank owns which global grid indices, as a list
of (start, length, pe) segments.  §5.2.4 of the paper: "the memory in a CG
of Sunway cannot satisfy the requirements for MCT to construct the GSMap
... the two data structures are generated **offline** as a preprocessing
step" — reproduced here by :meth:`GlobalSegMap.to_file` /
:meth:`GlobalSegMap.from_file` (binary .npz) plus a :func:`build cost
model <GlobalSegMap.build_cost>` exposing why online construction hurts.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

__all__ = ["GlobalSegMap"]


@dataclass
class GlobalSegMap:
    """Segments (start, length, pe) covering a global index space."""

    gsize: int
    starts: np.ndarray
    lengths: np.ndarray
    pes: np.ndarray

    def __post_init__(self) -> None:
        self.starts = np.asarray(self.starts, dtype=np.int64)
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        self.pes = np.asarray(self.pes, dtype=np.int64)
        if not (len(self.starts) == len(self.lengths) == len(self.pes)):
            raise ValueError("segment arrays must have equal length")
        if np.any(self.lengths <= 0):
            raise ValueError("segment lengths must be positive")
        ends = self.starts + self.lengths
        if len(self.starts) and (self.starts.min() < 0 or ends.max() > self.gsize):
            raise ValueError("segments out of range")
        order = np.argsort(self.starts)
        s, e = self.starts[order], ends[order]
        if np.any(s[1:] < e[:-1]):
            raise ValueError("segments overlap")

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def from_owners(owners: np.ndarray) -> "GlobalSegMap":
        """Build from a dense owner array (run-length encode it)."""
        owners = np.asarray(owners, dtype=np.int64).ravel()
        if owners.size == 0:
            raise ValueError("empty owner array")
        change = np.flatnonzero(np.diff(owners)) + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [owners.size]])
        keep = owners[starts] >= 0  # negative owner = hole (e.g. dry column)
        return GlobalSegMap(
            gsize=owners.size,
            starts=starts[keep],
            lengths=(ends - starts)[keep],
            pes=owners[starts][keep],
        )

    # -- queries -------------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.starts)

    @property
    def n_pes(self) -> int:
        return int(self.pes.max()) + 1 if len(self.pes) else 0

    @property
    def covered(self) -> int:
        return int(self.lengths.sum())

    def owner(self, gindex: int) -> int:
        """Rank owning a global index (-1 if in a hole)."""
        if not 0 <= gindex < self.gsize:
            raise IndexError(gindex)
        pos = np.searchsorted(self.starts, gindex, side="right") - 1
        if pos < 0:
            return -1
        if gindex < self.starts[pos] + self.lengths[pos]:
            return int(self.pes[pos])
        return -1

    def local_indices(self, pe: int) -> np.ndarray:
        """Global indices owned by ``pe``, ascending (the MCT local order)."""
        segs = np.flatnonzero(self.pes == pe)
        if len(segs) == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(self.starts[s], self.starts[s] + self.lengths[s]) for s in segs]
        )

    def owner_array(self) -> np.ndarray:
        """Dense owner-per-index array (-1 in holes)."""
        out = np.full(self.gsize, -1, dtype=np.int64)
        for s, l, p in zip(self.starts, self.lengths, self.pes):
            out[s : s + l] = p
        return out

    # -- elastic repair ------------------------------------------------------------

    def renumber(self, old_to_new: Dict[int, int]) -> "GlobalSegMap":
        """Relabel ranks through ``old_to_new`` (holes stay holes).

        Used after a spare promotion where slot numbering is unchanged
        (identity map) or any relabelling that keeps ownership intact.
        """
        pes = np.array([old_to_new.get(int(p), int(p)) for p in self.pes], dtype=np.int64)
        return GlobalSegMap(self.gsize, self.starts.copy(), self.lengths.copy(), pes)

    def shrink(self, dead: "List[int]") -> Tuple["GlobalSegMap", Dict[int, int]]:
        """Repaired GSMap after the dead ranks' indices are re-partitioned
        across survivors (nearest surviving owner along index order) and
        survivors densely renumbered — the coupler-side mirror of
        :meth:`repro.parallel.SimWorld.shrink`.

        Returns ``(new_gsmap, old_to_new)``.
        """
        from ..parallel.decomp import shrink_owners

        owners = self.owner_array()
        live = owners >= 0
        # Compact over live cells so holes neither adopt nor get adopted;
        # nearest-in-index-order over the compacted array is nearest live.
        new_compact, old_to_new = shrink_owners(owners[live], dead, n_ranks=self.n_pes)
        new_owners = np.full_like(owners, -1)
        new_owners[live] = new_compact
        return GlobalSegMap.from_owners(new_owners), old_to_new

    # -- offline precompute (§5.2.4) -----------------------------------------------

    def to_file(self, path: Union[str, Path]) -> None:
        np.savez_compressed(
            path, gsize=self.gsize, starts=self.starts,
            lengths=self.lengths, pes=self.pes,
        )

    @staticmethod
    def from_file(path: Union[str, Path]) -> "GlobalSegMap":
        with np.load(path) as data:
            return GlobalSegMap(
                gsize=int(data["gsize"]),
                starts=data["starts"],
                lengths=data["lengths"],
                pes=data["pes"],
            )

    def memory_bytes(self) -> int:
        """Resident size of the segment table (what a CG must hold)."""
        return int(self.starts.nbytes + self.lengths.nbytes + self.pes.nbytes)

    def build_cost(self) -> Dict[str, float]:
        """Why online construction is expensive: MCT gathers every rank's
        segment list to build the global table — O(segments) memory on
        *every* rank and an allgather of the whole table."""
        table = self.memory_bytes()
        return {
            "table_bytes_per_rank": float(table),
            "allgather_bytes": float(table * max(self.n_pes, 1)),
            "n_segments": float(self.n_segments),
        }
