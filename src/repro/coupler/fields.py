"""Coupling-field registry with unused-field pruning (§5.2.4).

CPL7 registers a fixed superset of exchange fields per component pair
(CESM's a2x/x2o/o2x/i2x bundles); most are never read by a given model
configuration.  "We remove the unnecessary communication variables that
are registered in MCT and are not used in GRIST and LICOM" — reproduced
by declaring the full registry, marking what each component actually
consumes, and pruning the difference before the rearranger runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

__all__ = ["FieldRegistry", "CESM_A2X_FIELDS", "CESM_X2O_FIELDS", "CESM_O2X_FIELDS", "CESM_I2X_FIELDS"]

# Representative CESM/CPL7 bundles (subset of the real ~40-field lists).
CESM_A2X_FIELDS = [
    "Sa_z", "Sa_u", "Sa_v", "Sa_tbot", "Sa_ptem", "Sa_shum", "Sa_pbot",
    "Sa_dens", "Faxa_swndr", "Faxa_swvdr", "Faxa_swndf", "Faxa_swvdf",
    "Faxa_lwdn", "Faxa_rainc", "Faxa_rainl", "Faxa_snowc", "Faxa_snowl",
    "Faxa_taux", "Faxa_tauy", "Faxa_sen", "Faxa_lat",
]
CESM_X2O_FIELDS = [
    "Foxx_taux", "Foxx_tauy", "Foxx_swnet", "Foxx_lwdn", "Foxx_sen",
    "Foxx_lat", "Foxx_rain", "Foxx_snow", "Foxx_rofl", "Foxx_rofi",
    "Sx_duu10n", "Fioi_melth", "Fioi_meltw", "Fioi_salt",
]
CESM_O2X_FIELDS = [
    "So_t", "So_s", "So_u", "So_v", "So_ssh", "So_dhdx", "So_dhdy",
    "Fioo_q", "So_bldepth",
]
CESM_I2X_FIELDS = [
    "Si_ifrac", "Si_t", "Si_avsdr", "Si_avsdf", "Faii_taux", "Faii_tauy",
    "Faii_sen", "Faii_lat", "Fioi_swpen",
]


@dataclass
class FieldRegistry:
    """Registered fields per exchange path + what consumers actually use."""

    registered: Dict[str, List[str]] = field(default_factory=dict)
    used: Dict[str, Set[str]] = field(default_factory=dict)

    @staticmethod
    def cesm_default() -> "FieldRegistry":
        reg = FieldRegistry()
        reg.register("a2x", CESM_A2X_FIELDS)
        reg.register("x2o", CESM_X2O_FIELDS)
        reg.register("o2x", CESM_O2X_FIELDS)
        reg.register("i2x", CESM_I2X_FIELDS)
        return reg

    def register(self, path: str, fields: Sequence[str]) -> None:
        if path in self.registered:
            raise ValueError(f"path {path!r} already registered")
        if len(set(fields)) != len(fields):
            raise ValueError("duplicate field names")
        self.registered[path] = list(fields)
        self.used.setdefault(path, set())

    def mark_used(self, path: str, fields: Sequence[str]) -> None:
        """Declare the fields a component actually reads on this path."""
        if path not in self.registered:
            raise KeyError(path)
        unknown = set(fields) - set(self.registered[path])
        if unknown:
            raise KeyError(f"fields not registered on {path!r}: {sorted(unknown)}")
        self.used[path] |= set(fields)

    def pruned(self, path: str) -> List[str]:
        """Fields that survive pruning (registered AND used), in
        registration order (deterministic message layout)."""
        if path not in self.registered:
            raise KeyError(f"unknown path {path!r}; have {sorted(self.registered)}")
        used = self.used[path]
        return [f for f in self.registered[path] if f in used]

    def n_used(self, path: str) -> int:
        """Number of fields surviving pruning on ``path``."""
        return len(self.pruned(path))

    def savings(self, path: str, lsize: int, itemsize: int = 8) -> Dict[str, float]:
        """Bytes saved per exchange by pruning this path."""
        n_reg = len(self.registered[path])
        n_used = self.n_used(path)
        return {
            "registered_fields": float(n_reg),
            "used_fields": float(n_used),
            "bytes_before": float(n_reg * lsize * itemsize),
            "bytes_after": float(n_used * lsize * itemsize),
            # An empty registration saves nothing (0/0 -> 0, not 1).
            "fraction_saved": 1.0 - (n_used / n_reg) if n_reg else 0.0,
        }
