"""CPL7/MCT-style coupler machinery: GSMap, AttrVect, Router, rearranger,
clocks/alarms, and the coupling-field registry with pruning."""

from .attrvect import AttrVect
from .clock import Alarm, Clock
from .fields import (
    CESM_A2X_FIELDS,
    CESM_I2X_FIELDS,
    CESM_O2X_FIELDS,
    CESM_X2O_FIELDS,
    FieldRegistry,
)
from .gsmap import GlobalSegMap
from .rearranger import Rearranger
from .router import Router

__all__ = [
    "GlobalSegMap",
    "AttrVect",
    "Router",
    "Rearranger",
    "Clock",
    "Alarm",
    "FieldRegistry",
    "CESM_A2X_FIELDS",
    "CESM_X2O_FIELDS",
    "CESM_O2X_FIELDS",
    "CESM_I2X_FIELDS",
]
