"""CPL7/MCT-style coupler machinery: GSMap, AttrVect, Router, rearranger,
compiled rearrange plans, the offline construction cache, clocks/alarms,
and the coupling-field registry with end-to-end pruning."""

from .attrvect import AttrVect
from .cache import CouplerCache
from .clock import Alarm, Clock
from .exchange import CoupledExchange
from .fields import (
    CESM_A2X_FIELDS,
    CESM_I2X_FIELDS,
    CESM_O2X_FIELDS,
    CESM_X2O_FIELDS,
    FieldRegistry,
)
from .gsmap import GlobalSegMap
from .plan import RearrangePlan
from .rearranger import Rearranger
from .router import Router

__all__ = [
    "GlobalSegMap",
    "AttrVect",
    "Router",
    "Rearranger",
    "RearrangePlan",
    "CouplerCache",
    "CoupledExchange",
    "Clock",
    "Alarm",
    "FieldRegistry",
    "CESM_A2X_FIELDS",
    "CESM_X2O_FIELDS",
    "CESM_O2X_FIELDS",
    "CESM_I2X_FIELDS",
]
