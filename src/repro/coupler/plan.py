"""RearrangePlan: the precompiled, coalesced coupler transfer (§5.2.4).

The original MCT rearranger moves one message per *field* per partner and
re-derives its send/recv partner lists (and re-agrees the field list via
a broadcast) on every coupling step.  At kilometer scale that latency
term dominates the coupler (Duan et al., arXiv:2404.10253): with ~40
registered fields per exchange path and 180 couplings per day, every
partner edge carries tens of thousands of small messages per simulated
day.

A :class:`RearrangePlan` is compiled **once per Router** and reused every
coupling step.  Compilation:

* freezes the field schema of every AttrVect bundle travelling over this
  Router edge (no per-step rank-0 broadcast — all ranks share the plan);
* flattens ``Router.send``/``Router.recv`` into per-rank partner lists
  (no per-step dict scans over the global table);
* assigns each bundle a row block in one coalesced buffer, so **all
  fields of all bundles bound for one partner travel in a single
  message** — one message per (src, dst) edge per coupling step instead
  of ``n_fields``.

Execution preserves the rearranger's resilience contract per coalesced
message: transient send failures are retried with backoff (a retried
success is bit-identical — the buffered payload is unchanged) and
receives are bounded by ``recv_timeout``, surfacing a structured
:class:`~repro.parallel.comm.CommTimeoutError` naming the edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..parallel.comm import CommTransientError, Request, SimComm
from .attrvect import AttrVect
from .router import Router

__all__ = ["RearrangePlan"]

#: Tag space for coalesced plan messages (distinct from the legacy
#: rearranger's 7300 so mixed traffic cannot cross-match).
_PLAN_TAG = 7400


@dataclass
class RearrangePlan:
    """A compiled multi-bundle transfer over one Router edge.

    Build with :meth:`compile` (or :meth:`repro.coupler.Rearranger.plan`,
    which inherits the rearranger's resilience knobs).  The plan object
    is shared by all simulated ranks, like the Router itself.
    """

    router: Router
    #: Ordered (bundle name, field names) schema; row layout of the
    #: coalesced buffer is the concatenation in this order.
    bundles: Tuple[Tuple[str, Tuple[str, ...]], ...]
    max_retries: int = 0
    retry_backoff_s: float = 0.0
    recv_timeout: Optional[float] = None
    #: Per-rank partner lists, precompiled from the Router table.
    _sends: Dict[int, List[Tuple[int, np.ndarray]]] = field(default_factory=dict, repr=False)
    _recvs: Dict[int, List[Tuple[int, np.ndarray]]] = field(default_factory=dict, repr=False)
    _rows: Dict[str, slice] = field(default_factory=dict, repr=False)

    # -- compilation ---------------------------------------------------------

    @staticmethod
    def compile(
        router: Router,
        bundles: Mapping[str, Sequence[str]],
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        recv_timeout: Optional[float] = None,
    ) -> "RearrangePlan":
        """Compile a plan for the given bundle schema over ``router``.

        ``bundles`` maps bundle names (coupling paths: ``"x2o"``,
        ``"i2x"``, ...) to their field lists.  Field names must be unique
        within a bundle; bundle order fixes the buffer layout.
        """
        if not bundles:
            raise ValueError("a plan needs at least one bundle")
        schema: List[Tuple[str, Tuple[str, ...]]] = []
        rows: Dict[str, slice] = {}
        row = 0
        for name, fields_ in bundles.items():
            fields_ = tuple(fields_)
            if not fields_:
                raise ValueError(f"bundle {name!r} has no fields")
            if len(set(fields_)) != len(fields_):
                raise ValueError(f"bundle {name!r} has duplicate field names")
            schema.append((name, fields_))
            rows[name] = slice(row, row + len(fields_))
            row += len(fields_)

        sends: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        recvs: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        for (p, q), idx in router.send.items():
            sends.setdefault(p, []).append((q, idx))
        for (p, q), idx in router.recv.items():
            recvs.setdefault(q, []).append((p, idx))
        for lst in sends.values():
            lst.sort(key=lambda t: t[0])
        for lst in recvs.values():
            lst.sort(key=lambda t: t[0])
        return RearrangePlan(
            router=router,
            bundles=tuple(schema),
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            recv_timeout=recv_timeout,
            _sends=sends,
            _recvs=recvs,
            _rows=rows,
        )

    # -- introspection -------------------------------------------------------

    @property
    def n_fields(self) -> int:
        """Total coalesced field rows across all bundles."""
        return sum(len(f) for _, f in self.bundles)

    @property
    def n_bundles(self) -> int:
        return len(self.bundles)

    def bundle_fields(self, name: str) -> Tuple[str, ...]:
        for bname, fields_ in self.bundles:
            if bname == name:
                return fields_
        raise KeyError(f"no bundle {name!r}; have {[b for b, _ in self.bundles]}")

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        comm: SimComm,
        srcs: Mapping[str, Optional[AttrVect]],
        dst_lsize: int,
        obs=None,
    ) -> Dict[str, AttrVect]:
        """Run the coalesced transfer on this rank.

        ``srcs`` maps bundle names to this rank's source-side AttrVects
        (None if this rank owns no source points); every plan bundle must
        be present.  Returns one destination AttrVect per bundle, each of
        ``dst_lsize`` points (zeros where the Router delivers nothing).
        Bitwise-identical to running the legacy per-bundle (or per-field)
        rearranger over the same Router — only the message layout changes.
        """
        if obs is None or not obs.enabled:
            return self._execute(comm, srcs, dst_lsize, None)
        with obs.span(
            "cpl.plan.execute",
            bundles=self.n_bundles,
            fields=self.n_fields,
            dst_lsize=dst_lsize,
            rank=comm.rank,
        ):
            return self._execute(comm, srcs, dst_lsize, obs)

    def _execute(
        self,
        comm: SimComm,
        srcs: Mapping[str, Optional[AttrVect]],
        dst_lsize: int,
        obs,
    ) -> Dict[str, AttrVect]:
        buf = self._pack(srcs)
        me = comm.rank
        n_total = self.n_fields
        out = np.zeros((n_total, dst_lsize))
        sent_bytes = 0
        sent_messages = 0
        recvs = dict(self._recvs.get(me, ()))

        reqs = []
        for q, idx in self._sends.get(me, ()):
            payload = buf[:, idx] if buf is not None else np.zeros((n_total, 0))
            if q == me:
                self_idx = recvs.get(me)
                if self_idx is not None:
                    out[:, self_idx] = payload
            else:
                if self.max_retries:
                    reqs.append(self._isend_with_retry(comm, payload, q, obs))
                else:
                    reqs.append(comm.isend(payload, q, tag=_PLAN_TAG))
                sent_bytes += int(payload.nbytes)
                sent_messages += 1
        for p, idx in self._recvs.get(me, ()):
            if p == me:
                continue
            out[:, idx] = comm.recv(source=p, tag=_PLAN_TAG, timeout=self.recv_timeout)
        Request.waitall(reqs)

        if obs is not None:
            obs.counter("cpl.plan.calls").inc()
            obs.counter("cpl.plan.messages").inc(sent_messages)
            obs.counter("cpl.plan.bytes").inc(sent_bytes)
            # What the same step would have cost un-coalesced: one message
            # per field per partner edge.
            obs.counter("cpl.plan.messages_saved").inc(
                sent_messages * (self.n_fields - 1)
            )
        return self._unpack(out)

    def _pack(self, srcs: Mapping[str, Optional[AttrVect]]) -> Optional[np.ndarray]:
        """Stack all bundles into one (n_fields, lsize) buffer; None if
        this rank holds no source points (all bundles None)."""
        blocks: List[np.ndarray] = []
        lsize: Optional[int] = None
        n_none = 0
        for name, fields_ in self.bundles:
            if name not in srcs:
                raise KeyError(f"missing source bundle {name!r}")
            av = srcs[name]
            if av is None:
                n_none += 1
                blocks.append(None)  # type: ignore[arg-type]
                continue
            if tuple(av.fields) != fields_:
                raise ValueError(
                    f"bundle {name!r} fields {av.fields} do not match the "
                    f"compiled schema {list(fields_)}"
                )
            if lsize is not None and av.lsize != lsize:
                raise ValueError("all source bundles must share one lsize")
            lsize = av.lsize
            blocks.append(av.data)
        if n_none == len(self.bundles):
            return None
        if n_none:
            raise ValueError(
                "source bundles must be all present or all None on a rank"
            )
        return np.concatenate(blocks, axis=0)

    def _unpack(self, out: np.ndarray) -> Dict[str, AttrVect]:
        return {
            name: AttrVect(list(fields_), out[self._rows[name]])
            for name, fields_ in self.bundles
        }

    def _isend_with_retry(self, comm: SimComm, payload, dest: int, obs) -> Request:
        """Post one coalesced send, retrying transient failures within
        budget — the same contract as the legacy rearranger, applied to
        the whole coalesced message (payload unchanged across attempts,
        so a retried success stays bit-identical)."""
        attempt = 0
        while True:
            try:
                return comm.isend(payload, dest, tag=_PLAN_TAG)
            except CommTransientError:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                if obs is not None:
                    obs.counter("resilience.retries").inc()
                delay = self.retry_backoff_s * (2.0 ** (attempt - 1))
                if delay > 0:
                    time.sleep(delay)

    # -- analytics -----------------------------------------------------------

    def message_counts(self, n_ranks: int) -> Dict[str, float]:
        """The coalescing arithmetic the machine model prices: per
        coupling step, every (src, dst) edge carries ONE plan message
        where the per-field path carries ``n_fields``."""
        send_partners = np.zeros(n_ranks)
        recv_partners = np.zeros(n_ranks)
        for (p, q) in self.router.send:
            if p != q:
                send_partners[p] += 1
        for (p, q) in self.router.recv:
            if p != q:
                recv_partners[q] += 1
        posts = send_partners + recv_partners
        n_fields = float(self.n_fields)
        coalesced_max = float(posts.max()) if n_ranks else 0.0
        return {
            "n_fields": n_fields,
            "n_bundles": float(self.n_bundles),
            "per_field_messages_per_edge": n_fields,
            "coalesced_messages_per_edge": 1.0,
            "per_field_messages_per_rank_max": coalesced_max * n_fields,
            "coalesced_messages_per_rank_max": coalesced_max,
            "message_reduction": n_fields,
        }
