"""Coupler clocks and alarms.

"The coupler manages the main clock in the system and maintains a clock
that is associated with each component.  GRIST and LICOM implement the
clock, which is consistent with the coupling clock, and make sure the
coupling period is consistent with their internal timestep" (§5.1.1).

:class:`Clock` advances in fixed steps; :class:`Alarm` fires at a coupling
interval and *validates at construction* that the interval divides evenly
into clock steps — the consistency requirement the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Clock", "Alarm"]


@dataclass
class Alarm:
    """Fires every ``interval`` seconds of a clock's time.

    The ring schedule is computed as ``base + n * interval`` (not by
    repeated addition), so it carries no accumulated float error over
    arbitrarily long runs — the same fix :meth:`Clock.advance` applies to
    the model time.
    """

    name: str
    interval: float
    base: float = 0.0
    rings_done: int = 0

    @property
    def next_ring(self) -> float:
        return self.base + (self.rings_done + 1) * self.interval

    def ringing(self, time: float) -> bool:
        return time + 1e-9 >= self.next_ring

    def rearm(self) -> None:
        self.rings_done += 1

    def reset_to(self, periods_done: int) -> None:
        """Re-arm as if ``periods_done`` rings already fired (restart)."""
        if periods_done < 0:
            raise ValueError("periods_done must be >= 0")
        self.rings_done = periods_done


class Clock:
    """Fixed-step model clock with coupling alarms."""

    def __init__(self, dt: float, start: float = 0.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self.start = start
        self.time = start
        self.step_count = 0
        self._alarms: Dict[str, Alarm] = {}

    def add_alarm(self, name: str, interval: float) -> Alarm:
        """Register an alarm; interval must be a whole number of steps
        (the coupling-period consistency check)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        ratio = interval / self.dt
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                f"coupling period {interval}s is not a multiple of the "
                f"component step {self.dt}s (ratio {ratio:.6f})"
            )
        if name in self._alarms:
            raise ValueError(f"alarm {name!r} already exists")
        alarm = Alarm(name=name, interval=interval, base=self.start)
        self._alarms[name] = alarm
        return alarm

    def advance(self) -> None:
        # time = start + n*dt, not repeated addition: summing dt step by
        # step accumulates float error that eventually exceeds the 1e-9
        # alarm tolerance (~1e5 steps at dt=0.1) and fires alarms a step
        # late or skips rings entirely.
        self.step_count += 1
        self.time = self.start + self.step_count * self.dt

    def ringing(self, name: str) -> bool:
        """Check-and-rearm an alarm at the current time."""
        alarm = self._alarms[name]
        if alarm.ringing(self.time):
            alarm.rearm()
            return True
        return False

    def will_ring(self, name: str, steps: int = 1) -> bool:
        """Pure query: would ``name`` ring after ``steps`` more advances?

        Does not rearm — drivers use it to schedule work (e.g. publish a
        lagged export) *before* the advance that fires the alarm.
        """
        alarm = self._alarms[name]
        return alarm.ringing(self.start + (self.step_count + steps) * self.dt)

    def alarms(self) -> List[str]:
        return sorted(self._alarms)

    def synchronized_with(self, other: "Clock") -> bool:
        """Two clocks agree if they read the same time (coupling check)."""
        return abs(self.time - other.time) < 1e-6
