"""AP3ESM reproduction: a kilometer-scale AI-powered, performance-portable
Earth system model (SC '25) rebuilt from scratch in Python.

Subpackages
-----------
``repro.utils``
    GPTL-style timers, SYPD conversions, constants, deterministic RNG.
``repro.parallel``
    Simulated MPI runtime, decompositions, halo exchange, topology tools.
``repro.pp``
    Kokkos-style performance-portability layer + SWGOMP loop offload.
``repro.machine``
    Analytic Sunway OceanLight / ORISE models and the calibrated
    performance model behind the scaling reproductions.
``repro.grids``
    Icosahedral Voronoi C-grid (TRSK), tripolar ocean grid, remapping.
``repro.ai``
    Numpy neural-network stack for the AI physics suite.
``repro.atm`` / ``repro.ocn`` / ``repro.ice`` / ``repro.lnd``
    The four model components behind the CPL7 contract.
``repro.coupler``
    CPL7/MCT machinery: GSMap, AttrVect, Router, rearrangers, clocks.
``repro.precision``
    Group-wise-scaling FP64/FP32 mixed precision + acceptance metrics.
``repro.io``
    Subfile parallel I/O.
``repro.resilience``
    Fault injection (seeded FaultPlan) + resilience machinery: rotating
    checksummed checkpoints, comm retry/timeouts, the task-domain
    watchdog, the AI-physics guardrail, and the chaos harness.
``repro.esm``
    The coupled AP3ESM driver, Table 1 configurations, the typhoon case.
``repro.bench``
    Published reference data and the table/figure regeneration harness.

See DESIGN.md for the system inventory and substitution ledger, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "utils",
    "parallel",
    "pp",
    "machine",
    "grids",
    "ai",
    "atm",
    "ocn",
    "ice",
    "lnd",
    "coupler",
    "precision",
    "io",
    "resilience",
    "esm",
    "bench",
]
