"""Baroclinic (20 s-substep) dynamics: 3-D momentum over the level stack.

The reduced baroclinic system solved here keeps the terms that set the
computational and physical structure of LICOM's baroclinic mode:

* pressure gradient from the hydrostatic integral of the density anomaly
  (linear equation of state),
* semi-implicit Coriolis (same rotation as the barotropic mode),
* implicit vertical friction with the Canuto-like mixing coefficient,
* surface wind-stress and linear bottom-drag boundary conditions,
* horizontal Laplacian friction for grid-scale noise.

Momentum advection is omitted (documented simplification; the tracer
module carries the advective transport that the coupled experiments
diagnose).  All fields are (nlev, nlat, nlon), level 0 at the surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..utils.units import GRAVITY, RHO_OCEAN
from .metrics import CGridMetrics, grad_x, grad_y
from .mixing import MixingParams, canuto_kappa, implicit_vertical_diffusion, richardson_number

__all__ = ["linear_eos", "BaroclinicSolver"]

RHO_ALPHA = 2.0e-4   # thermal expansion (1/K)
RHO_BETA = 7.6e-4    # haline contraction (1/psu)
T_REF = 10.0         # deg C
S_REF = 35.0         # psu


def linear_eos(t: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Density (kg/m^3) from the linear equation of state."""
    return RHO_OCEAN * (1.0 - RHO_ALPHA * (t - T_REF) + RHO_BETA * (s - S_REF))


@dataclass
class BaroclinicSolver:
    """Level-stack momentum stepper on the tripolar C-grid."""

    metrics: CGridMetrics
    mask3d: np.ndarray          # (nlev, nlat, nlon) wet mask
    dz: np.ndarray              # (nlev,) layer thicknesses, m
    horizontal_viscosity: float = 1.0e4
    # Rayleigh friction on every level (1/s): the equilibration mechanism
    # standing in for the omitted momentum advection (~1.2-day timescale).
    bottom_drag: float = 1.0e-5
    mixing: MixingParams = field(default_factory=MixingParams)

    def __post_init__(self) -> None:
        if self.mask3d.shape[1:] != self.metrics.shape:
            raise ValueError("mask3d must match the horizontal grid")
        if self.dz.shape[0] != self.mask3d.shape[0]:
            raise ValueError("dz must have one entry per level")
        m = self.metrics
        self.mask_u3 = self.mask3d & np.roll(self.mask3d, -1, axis=2)
        mv = np.zeros_like(self.mask3d)
        mv[:, :-1] = self.mask3d[:, :-1] & self.mask3d[:, 1:]
        self.mask_v3 = mv
        self.mask_u3 &= m.mask_u[None, :, :]
        self.mask_v3 &= m.mask_v[None, :, :]

    # -- pieces ---------------------------------------------------------------

    def pressure(self, t: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Hydrostatic pressure anomaly (Pa) at level centers."""
        rho_anom = linear_eos(t, s) - RHO_OCEAN
        dz = self.dz.reshape(-1, 1, 1)
        # Pressure at center k: g * (sum of anomalies above + half of own layer).
        cum = np.cumsum(rho_anom * dz, axis=0)
        return GRAVITY * (cum - 0.5 * rho_anom * dz)

    def step(
        self,
        u: np.ndarray,
        v: np.ndarray,
        t: np.ndarray,
        s: np.ndarray,
        dt: float,
        taux: Optional[np.ndarray] = None,
        tauy: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance (u, v) one baroclinic substep; returns new (u, v)."""
        m = self.metrics
        p = self.pressure(t, s)

        # Pressure-gradient acceleration per level.
        du = np.stack([-grad_x(m, p[k]) / RHO_OCEAN for k in range(p.shape[0])])
        dv = np.stack([-grad_y(m, p[k]) / RHO_OCEAN for k in range(p.shape[0])])

        # Horizontal Laplacian friction (5-point, masked).
        du += self.horizontal_viscosity * self._laplacian(u, self.mask_u3)
        dv += self.horizontal_viscosity * self._laplacian(v, self.mask_v3)

        # Surface stress enters the top layer; bottom drag the deepest wet layer.
        if taux is not None:
            du[0] += np.where(m.mask_u, taux / (RHO_OCEAN * self.dz[0]), 0.0)
        if tauy is not None:
            dv[0] += np.where(m.mask_v, tauy / (RHO_OCEAN * self.dz[0]), 0.0)
        du -= self.bottom_drag * u
        dv -= self.bottom_drag * v

        u_star = u + dt * du
        v_star = v + dt * dv

        # Semi-implicit Coriolis rotation per level.
        f_u = 0.5 * (m.f_c + np.roll(m.f_c, -1, axis=1))
        f_v = np.zeros_like(m.f_c)
        f_v[:-1] = 0.5 * (m.f_c[:-1] + m.f_c[1:])
        fdt_u = (f_u * dt)[None]
        fdt_v = (f_v * dt)[None]
        v_at_u = self._v_to_u(v_star)
        u_at_v = self._u_to_v(u_star)
        u_new = (u_star + fdt_u * v_at_u) / (1.0 + fdt_u**2)
        v_new = (v_star - fdt_v * u_at_v) / (1.0 + fdt_v**2)

        # Implicit vertical friction with the Canuto-like coefficient.
        rho = linear_eos(t, s)
        ri = richardson_number(rho, u_new, v_new, self.dz, self.mixing)
        kappa = canuto_kappa(ri, self.mixing)
        u_new = implicit_vertical_diffusion(u_new, kappa, self.dz, dt, self.mask_u3)
        v_new = implicit_vertical_diffusion(v_new, kappa, self.dz, dt, self.mask_v3)

        u_new = np.where(self.mask_u3, u_new, 0.0)
        v_new = np.where(self.mask_v3, v_new, 0.0)
        return u_new, v_new

    # -- helpers -----------------------------------------------------------------

    def _laplacian(self, f: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Masked 5-point Laplacian with metric scaling (per level)."""
        m = self.metrics
        fm = np.where(mask, f, 0.0)
        east = np.roll(fm, -1, axis=2)
        west = np.roll(fm, 1, axis=2)
        north = np.concatenate([fm[:, 1:], fm[:, -1:]], axis=1)
        south = np.concatenate([fm[:, :1], fm[:, :-1]], axis=1)
        scale = (0.5 * (m.dxu + m.dyv)) ** 2
        lap = (east + west + north + south - 4.0 * fm) / scale[None]
        return np.where(mask, lap, 0.0)

    @staticmethod
    def _v_to_u(v: np.ndarray) -> np.ndarray:
        v_south = np.concatenate([np.zeros_like(v[:, :1]), v[:, :-1]], axis=1)
        east = np.roll(v, -1, axis=2)
        east_south = np.roll(v_south, -1, axis=2)
        return 0.25 * (v + v_south + east + east_south)

    @staticmethod
    def _u_to_v(u: np.ndarray) -> np.ndarray:
        west = np.roll(u, 1, axis=2)
        north = np.concatenate([u[:, 1:], u[:, -1:]], axis=1)
        north_west = np.roll(north, 1, axis=2)
        return 0.25 * (u + west + north + north_west)
