"""LICOMK++-style kernels: the ocean's hot loops expressed through the
performance-portability layer.

The paper's LICOMK++ "implemented a performance-portable version using
Kokkos", with a hash-based registry standing in for template dispatch on
Sunway and host-device hybrid execution.  This module ports three of this
library's ocean kernels to that programming model:

* :func:`eos_kernel` — the linear equation of state (pointwise);
* :func:`canuto_kernel` — the Richardson-closure mixing coefficient
  (pointwise on interfaces), the very kernel §5.2.2 says the compression
  was first applied to — and it composes with :class:`~repro.ocn.compress.
  Compressor`, running on packed wet points;
* :func:`baroclinic_pressure_kernel` — the hydrostatic column integral as
  an MDRange over (columns,) with a serial level scan (the layout GPU
  ports use).

Each has a plain-numpy reference in the solver modules; the tests require
bit-identical results on every execution space, with and without
compression — the full §5.3 + §5.2.2 composition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..pp import ExecutionSpace, KernelRegistry, parallel_for
from ..utils.units import GRAVITY, RHO_OCEAN
from .baroclinic import RHO_ALPHA, RHO_BETA, S_REF, T_REF
from .compress import Compressor
from .mixing import MixingParams

__all__ = [
    "OCEAN_KERNELS",
    "make_ocean_registry",
    "eos_kernel",
    "canuto_kernel",
    "baroclinic_pressure_kernel",
    "run_eos",
    "run_canuto",
    "run_pressure",
]


def eos_kernel(idx: np.ndarray, rho: np.ndarray, t: np.ndarray, s: np.ndarray) -> None:
    """rho = rho0 (1 - alpha (T - T0) + beta (S - S0)) on flat points."""
    rho[idx] = RHO_OCEAN * (1.0 - RHO_ALPHA * (t[idx] - T_REF) + RHO_BETA * (s[idx] - S_REF))


def canuto_kernel(
    idx: np.ndarray,
    kappa: np.ndarray,
    ri: np.ndarray,
    kappa_background: float,
    kappa_0: float,
    kappa_max: float,
    ri_critical: float,
    power: float,
) -> None:
    """Richardson-closure mixing coefficient on flat interface points."""
    r = ri[idx]
    stable = kappa_background + kappa_0 / (1.0 + np.maximum(r, 0.0) / ri_critical) ** power
    kappa[idx] = np.where(r < 0.0, kappa_max, stable)


def baroclinic_pressure_kernel(
    idx: np.ndarray,
    p: np.ndarray,
    rho_anom: np.ndarray,
    dz: np.ndarray,
) -> None:
    """Hydrostatic pressure per column chunk: p[k] = g (sum_{j<k} ra_j dz_j
    + ra_k dz_k / 2).  ``p``/``rho_anom`` are (ncol, nlev); the kernel owns
    a chunk of columns and scans levels serially (nlev is small)."""
    nlev = p.shape[1]
    cum = np.zeros(len(idx))
    for k in range(nlev):
        contrib = rho_anom[idx, k] * dz[k]
        p[idx, k] = GRAVITY * (cum + 0.5 * contrib)
        cum = cum + contrib


# -- per-context registry factory (§5.3 hash registration) -----------------


def make_ocean_registry(name: str = "ocn") -> KernelRegistry:
    """A fresh per-context registry with the ocean kernels registered."""
    reg = KernelRegistry(name=name)
    for fn in (eos_kernel, canuto_kernel, baroclinic_pressure_kernel):
        reg.register(fn)
    return reg


#: Backward-compatible module-level registry: the default used by the
#: ``run_*`` wrappers when no per-context registry is passed (the §5.3
#: hash-based function registration).
OCEAN_KERNELS = make_ocean_registry()


# -- host-callable wrappers (dispatch through the registry) ----------------


def run_eos(
    space: ExecutionSpace,
    t: np.ndarray,
    s: np.ndarray,
    compressor: Optional[Compressor] = None,
    registry: Optional[KernelRegistry] = None,
) -> np.ndarray:
    """Density via the portable kernel; optionally on packed wet points."""
    reg = registry if registry is not None else OCEAN_KERNELS
    if compressor is not None:
        t_p = compressor.compress(t)
        s_p = compressor.compress(s)
        rho_p = np.zeros_like(t_p)
        reg.launch(space, reg.register(eos_kernel), len(t_p), rho_p, t_p, s_p)
        return compressor.decompress(rho_p)
    flat_t = t.ravel()
    flat_s = s.ravel()
    rho = np.zeros_like(flat_t)
    reg.launch(space, reg.register(eos_kernel), flat_t.size, rho, flat_t, flat_s)
    return rho.reshape(t.shape)


def run_canuto(
    space: ExecutionSpace,
    ri: np.ndarray,
    params: Optional[MixingParams] = None,
    compressor: Optional[Compressor] = None,
    registry: Optional[KernelRegistry] = None,
) -> np.ndarray:
    """Mixing coefficient via the portable kernel (packed or full)."""
    reg = registry if registry is not None else OCEAN_KERNELS
    prm = params or MixingParams()
    args = (prm.kappa_background, prm.kappa_0, prm.kappa_max, prm.ri_critical, prm.power)
    handle = reg.register(canuto_kernel)
    if compressor is not None:
        ri_p = compressor.compress(ri)
        kappa_p = np.zeros_like(ri_p)
        reg.launch(space, handle, len(ri_p), kappa_p, ri_p, *args)
        return compressor.decompress(kappa_p)
    flat = ri.ravel()
    kappa = np.zeros_like(flat)
    reg.launch(space, handle, flat.size, kappa, flat, *args)
    return kappa.reshape(ri.shape)


def run_pressure(
    space: ExecutionSpace,
    t: np.ndarray,
    s: np.ndarray,
    dz: np.ndarray,
    registry: Optional[KernelRegistry] = None,
) -> np.ndarray:
    """Hydrostatic pressure via the portable column kernel.

    ``t``/``s`` are (nlev, nlat, nlon); returns pressure in the same
    layout (columns are the parallel dimension, matching the GPU port).
    """
    reg = registry if registry is not None else OCEAN_KERNELS
    nlev = t.shape[0]
    rho_anom = (
        RHO_OCEAN * (1.0 - RHO_ALPHA * (t - T_REF) + RHO_BETA * (s - S_REF)) - RHO_OCEAN
    )
    cols = rho_anom.reshape(nlev, -1).T.copy()  # (ncol, nlev)
    p = np.zeros_like(cols)
    handle = reg.register(baroclinic_pressure_kernel)
    reg.launch(space, handle, cols.shape[0], p, cols, dz)
    return p.T.reshape(t.shape)
