"""Canuto-like vertical mixing and the implicit vertical diffusion solver.

The paper's §5.2.2 notes the non-ocean-point removal was first applied to
the *canuto* vertical-mixing scheme; here the scheme is a
Richardson-number closure of the same family (Pacanowski-Philander form
with Canuto-style stability limits):

    Ri    = N^2 / (S^2 + eps)
    kappa = kappa_bg + kappa_0 / (1 + Ri / Ri_c)^p      (Ri >= 0)
    kappa = kappa_max                                   (Ri < 0, unstable)

Vertical diffusion is applied *implicitly* (tridiagonal Thomas solve,
vectorized over all columns) because the mixed-layer kappa at km-scale
stratification makes explicit diffusion unconditionally impractical — the
same reason LICOM solves it implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.units import GRAVITY, RHO_OCEAN

__all__ = ["MixingParams", "richardson_number", "canuto_kappa", "implicit_vertical_diffusion"]


@dataclass(frozen=True)
class MixingParams:
    kappa_background: float = 1.0e-5   # m^2/s abyssal value
    kappa_0: float = 1.0e-2            # m^2/s mixed-layer scale
    kappa_max: float = 1.0e-1          # m^2/s convective limit
    ri_critical: float = 0.3
    power: float = 2.0
    n2_floor: float = 1.0e-10


def richardson_number(
    rho: np.ndarray, u: np.ndarray, v: np.ndarray, dz: np.ndarray, params: MixingParams | None = None
) -> np.ndarray:
    """Gradient Richardson number at interior interfaces.

    Inputs are (nlev, ...) level fields and (nlev,) thicknesses; output is
    (nlev-1, ...) at the interfaces between adjacent levels (interface k
    sits between levels k and k+1, k increasing downward).
    """
    params = params or MixingParams()
    dzi = 0.5 * (dz[:-1] + dz[1:])
    shape = (-1,) + (1,) * (rho.ndim - 1)
    dzi = dzi.reshape(shape)
    n2 = -(GRAVITY / RHO_OCEAN) * (rho[:-1] - rho[1:]) / dzi  # z up: rho increases down
    du = (u[:-1] - u[1:]) / dzi
    dv = (v[:-1] - v[1:]) / dzi
    s2 = du**2 + dv**2 + 1.0e-12
    return n2 / s2


def canuto_kappa(ri: np.ndarray, params: MixingParams | None = None) -> np.ndarray:
    """Mixing coefficient from the Richardson number (see module docs)."""
    p = params or MixingParams()
    stable = p.kappa_background + p.kappa_0 / (1.0 + np.maximum(ri, 0.0) / p.ri_critical) ** p.power
    return np.where(ri < 0.0, p.kappa_max, stable)


def implicit_vertical_diffusion(
    field: np.ndarray,
    kappa: np.ndarray,
    dz: np.ndarray,
    dt: float,
    mask3d: np.ndarray | None = None,
) -> np.ndarray:
    """Backward-Euler vertical diffusion, tridiagonal solve per column.

    Parameters
    ----------
    field:
        (nlev, ...) level values (T, S, u, or v).
    kappa:
        (nlev-1, ...) interface diffusivities.
    dz:
        (nlev,) layer thicknesses.
    dt:
        Time step (s).
    mask3d:
        Optional (nlev, ...) wet mask; diffusion never crosses the
        bathymetry (kappa is zeroed at interfaces touching dry cells), and
        dry cells are returned unchanged.

    The Thomas algorithm runs level-by-level (nlev is small) with all
    columns vectorized — the layout real models use on GPUs.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    nlev = field.shape[0]
    if kappa.shape[0] != nlev - 1:
        raise ValueError("kappa must live on the nlev-1 interior interfaces")
    if mask3d is not None:
        wet_pair = mask3d[:-1] & mask3d[1:]
        kappa = np.where(wet_pair, kappa, 0.0)

    dz_col = dz.reshape((-1,) + (1,) * (field.ndim - 1))
    dzi = 0.5 * (dz_col[:-1] + dz_col[1:])
    # Flux coupling coefficients c_k = dt * kappa_k / (dz_k * dzi_k).
    upper = np.zeros_like(field)   # coefficient coupling level k to k+1
    lower = np.zeros_like(field)   # coupling level k to k-1
    upper[:-1] = dt * kappa / (dz_col[:-1] * dzi)
    lower[1:] = dt * kappa / (dz_col[1:] * dzi)

    a = -lower                       # sub-diagonal
    b = 1.0 + lower + upper          # diagonal
    c = -upper                       # super-diagonal
    d = field.copy()

    # Thomas forward sweep.
    cp = np.zeros_like(field)
    dp = np.zeros_like(field)
    cp[0] = c[0] / b[0]
    dp[0] = d[0] / b[0]
    for k in range(1, nlev):
        denom = b[k] - a[k] * cp[k - 1]
        cp[k] = c[k] / denom
        dp[k] = (d[k] - a[k] * dp[k - 1]) / denom
    out = np.empty_like(field)
    out[-1] = dp[-1]
    for k in range(nlev - 2, -1, -1):
        out[k] = dp[k] - cp[k] * out[k + 1]

    if mask3d is not None:
        out = np.where(mask3d, out, field)
    return out
