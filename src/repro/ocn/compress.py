"""3-D non-ocean point removal (§5.2.2).

"Initially, input data are partitioned, and the total grid points of
non-ocean points are removed. Then, an MPI rank mapping ensures correct
data access, and a new communication topology optimizes boundary exchange.
This results in about 30 % computational resource reduction, consistent
results, and improved efficiency at the process-level parallelism."

Three pieces reproduce that pipeline:

* :class:`Compressor` — gather/scatter between the full (nlev, nlat, nlon)
  box and the packed wet-point vector, with exact round-trips;
* :func:`compressed_equals_full` — the "consistent results" check: any
  pointwise kernel applied to packed data decompresses bit-identically to
  the masked full-box execution;
* :func:`wet_partition` + :func:`load_stats` — the rank remapping: columns
  are re-partitioned by *wet volume* instead of by index box, removing the
  load imbalance land-heavy blocks cause, and the resulting neighbor
  topology is exported as a communication graph for
  :func:`repro.parallel.topology.greedy_locality_mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..parallel.decomp import Block2D, block_ranges

__all__ = [
    "Compressor",
    "compressed_equals_full",
    "wet_partition",
    "load_stats",
    "wet_topology_matrix",
]


@dataclass
class Compressor:
    """Pack/unpack a 3-D field onto its wet points."""

    mask3d: np.ndarray

    def __post_init__(self) -> None:
        self.mask3d = np.asarray(self.mask3d, dtype=bool)
        self._flat_idx = np.flatnonzero(self.mask3d.ravel())

    @property
    def n_full(self) -> int:
        return int(self.mask3d.size)

    @property
    def n_wet(self) -> int:
        return int(self._flat_idx.size)

    @property
    def reduction(self) -> float:
        """Fraction of points removed (the paper quotes ~0.30)."""
        return 1.0 - self.n_wet / self.n_full

    def compress(self, field: np.ndarray) -> np.ndarray:
        if field.shape != self.mask3d.shape:
            raise ValueError("field shape must match the mask")
        return field.ravel()[self._flat_idx].copy()

    def decompress(self, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        if values.shape != (self.n_wet,):
            raise ValueError(f"expected {self.n_wet} packed values")
        out = np.full(self.n_full, fill, dtype=values.dtype)
        out[self._flat_idx] = values
        return out.reshape(self.mask3d.shape)

    def memory_bytes(self, dtype=np.float64, n_fields: int = 1) -> Tuple[int, int]:
        """(full, packed) resident bytes for ``n_fields`` 3-D fields."""
        itemsize = np.dtype(dtype).itemsize
        return self.n_full * itemsize * n_fields, self.n_wet * itemsize * n_fields


def compressed_equals_full(
    compressor: Compressor,
    kernel: Callable[[np.ndarray], np.ndarray],
    field: np.ndarray,
) -> bool:
    """Bitwise equivalence of packed vs full-box execution of a pointwise
    kernel (the §5.1 'bit-for-bit validation' applied to compression)."""
    full = np.where(compressor.mask3d, kernel(field), field)
    packed = compressor.decompress(kernel(compressor.compress(field)))
    packed = np.where(compressor.mask3d, packed, field)
    return bool(np.array_equal(full, packed))


def wet_partition(mask3d: np.ndarray, n_ranks: int) -> np.ndarray:
    """Partition *columns* across ranks by cumulative wet volume.

    Returns (nlat, nlon) owner indices (-1 for all-dry columns).  Columns
    are walked in row-major order and cut into spans of equal wet-point
    count — the 1-D analogue of the paper's rank remapping, which keeps
    subdomains contiguous (bounded halo perimeters) while equalizing work.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    wet_per_col = mask3d.sum(axis=0)
    flat = wet_per_col.ravel()
    owners = np.full(flat.shape, -1, dtype=np.int64)
    wet_cols = np.flatnonzero(flat > 0)
    if len(wet_cols) == 0:
        return owners.reshape(wet_per_col.shape)
    cum = np.cumsum(flat[wet_cols])
    total = cum[-1]
    # Boundaries at equal shares of wet volume.
    targets = total * (np.arange(1, n_ranks + 1) / n_ranks)
    cuts = np.searchsorted(cum, targets, side="left")
    start = 0
    for r, end in enumerate(cuts):
        end = min(int(end) + 1, len(wet_cols)) if r < n_ranks - 1 else len(wet_cols)
        owners[wet_cols[start:end]] = r
        start = end
    return owners.reshape(wet_per_col.shape)


def load_stats(mask3d: np.ndarray, owners: np.ndarray, n_ranks: int) -> Dict[str, float]:
    """Wet-point load balance of a column-ownership map.

    Returns max/mean imbalance and per-rank extremes; ``owners`` may come
    from a plain :class:`Block2D` layout (before) or
    :func:`wet_partition` (after).
    """
    wet_per_col = mask3d.sum(axis=0)
    loads = np.zeros(n_ranks, dtype=np.int64)
    for r in range(n_ranks):
        loads[r] = int(wet_per_col[owners == r].sum())
    mean = loads.mean() if n_ranks else 0.0
    return {
        "max_load": float(loads.max()),
        "min_load": float(loads.min()),
        "mean_load": float(mean),
        "imbalance": float(loads.max() / mean) if mean > 0 else float("inf"),
    }


def block_owner_map(mask3d: np.ndarray, py: int, px: int) -> np.ndarray:
    """The *original* layout: rectangular blocks regardless of land."""
    nlat, nlon = mask3d.shape[1:]
    owners = np.empty((nlat, nlon), dtype=np.int64)
    for r in range(py * px):
        b = Block2D(nlat, nlon, py, px, r)
        ys, xs = b.global_slices()
        owners[ys, xs] = r
    return owners


def wet_topology_matrix(owners: np.ndarray, n_ranks: int, bytes_per_face: int = 8) -> np.ndarray:
    """Communication (traffic) matrix of the new decomposition: adjacent
    columns with different owners exchange one face per step.  Feed the
    result to :func:`repro.parallel.topology.greedy_locality_mapping` to
    rebuild the node placement — the paper's 'new communication topology'."""
    mat = np.zeros((n_ranks, n_ranks), dtype=np.int64)
    a, b = owners[:, :-1], owners[:, 1:]
    _accumulate_pairs(mat, a, b, bytes_per_face)
    _accumulate_pairs(mat, owners[:, -1:], owners[:, :1], bytes_per_face)  # wrap
    _accumulate_pairs(mat, owners[:-1, :], owners[1:, :], bytes_per_face)
    return mat


def _accumulate_pairs(mat: np.ndarray, a: np.ndarray, b: np.ndarray, w: int) -> None:
    sel = (a != b) & (a >= 0) & (b >= 0)
    pa = a[sel].ravel()
    pb = b[sel].ravel()
    np.add.at(mat, (pa, pb), w)
    np.add.at(mat, (pb, pa), w)
