"""Barotropic (free-surface) solver: the 2 s-substep engine of LICOM.

Forward-backward time stepping of the depth-integrated shallow-water
system on the tripolar C-grid:

    eta^{n+1} = eta^n - dt * div( H u^n )
    u^{n+1}   = u^n + dt * ( -g d(eta^{n+1})/dx + f v - r u + taux/(rho H) )
    v^{n+1}   = v^n + dt * ( -g d(eta^{n+1})/dy - f u - r v + tauy/(rho H) )

Updating the pressure-gradient with the *new* eta (forward-backward) is
what lets LICOM-class models run the barotropic mode at CFL ~ 1 without
subcycling instability.  Volume is conserved to round-off (flux form +
closed/masked boundaries); the stabilization each substep includes one
global diagnostic reduction, matching the solver-norm allreduce the
machine model charges per 2 s step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..utils.units import GRAVITY, RHO_OCEAN
from .metrics import CGridMetrics, divergence_c, grad_x, grad_y

__all__ = ["BarotropicState", "BarotropicSolver"]


@dataclass
class BarotropicState:
    """Free-surface height and depth-mean velocities (C-grid faces)."""

    eta: np.ndarray   # (nlat, nlon) m
    u: np.ndarray     # (nlat, nlon) m/s, east faces
    v: np.ndarray     # (nlat, nlon) m/s, north faces

    def copy(self) -> "BarotropicState":
        return BarotropicState(self.eta.copy(), self.u.copy(), self.v.copy())

    @staticmethod
    def zeros(shape: Tuple[int, int]) -> "BarotropicState":
        return BarotropicState(
            np.zeros(shape), np.zeros(shape), np.zeros(shape)
        )


@dataclass
class BarotropicSolver:
    """Forward-backward free-surface stepper.

    Parameters
    ----------
    metrics:
        C-grid metrics and masks.
    depth:
        Resting ocean depth at centers (m), zero on land.
    drag:
        Linear bottom drag (1/s).
    """

    metrics: CGridMetrics
    depth: np.ndarray
    drag: float = 1.0e-6
    h_u: np.ndarray = field(init=False)
    h_v: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        m = self.metrics
        if self.depth.shape != m.shape:
            raise ValueError("depth must match the grid shape")
        # Face depths: minimum of adjacent columns (no flow through sills
        # shallower than either side's bathymetry).
        d = self.depth
        east = np.roll(d, -1, axis=1)
        self.h_u = np.where(m.mask_u, np.minimum(d, east), 0.0)
        h_v = np.zeros_like(d)
        h_v[:-1] = np.minimum(d[:-1], d[1:])
        self.h_v = np.where(m.mask_v, h_v, 0.0)

    # -- stepping ------------------------------------------------------------

    def step(
        self,
        state: BarotropicState,
        dt: float,
        taux: Optional[np.ndarray] = None,
        tauy: Optional[np.ndarray] = None,
    ) -> Tuple[BarotropicState, float]:
        """One forward-backward substep; returns (new state, |eta| norm).

        The returned norm is the global stabilization diagnostic — the
        allreduce the paper's solver performs every barotropic substep.
        """
        m = self.metrics
        eta, u, v = state.eta, state.u, state.v

        flux_u = u * self.h_u * m.ly_east
        flux_v = v * self.h_v * m.lx_north
        eta_new = eta - dt * divergence_c(m, flux_u, flux_v)
        eta_new = np.where(m.mask_c, eta_new, 0.0)

        # Coriolis parameters averaged to the staggered faces.
        f_u = 0.5 * (m.f_c + np.roll(m.f_c, -1, axis=1))
        f_v = np.zeros_like(m.f_c)
        f_v[:-1] = 0.5 * (m.f_c[:-1] + m.f_c[1:])

        gx = grad_x(m, eta_new)
        gy = grad_y(m, eta_new)
        hu = np.maximum(self.h_u, 1.0)
        hv = np.maximum(self.h_v, 1.0)
        du = -GRAVITY * gx - self.drag * u
        dv = -GRAVITY * gy - self.drag * v
        if taux is not None:
            du = du + np.where(m.mask_u, taux / (RHO_OCEAN * hu), 0.0)
        if tauy is not None:
            dv = dv + np.where(m.mask_v, tauy / (RHO_OCEAN * hv), 0.0)

        # Semi-implicit Coriolis rotation: explicit (forward) Coriolis is
        # unconditionally unstable; the implicit 2x2 rotation
        #   (u, v) <- (u* + f dt v*, v* - f dt u*) / (1 + (f dt)^2)
        # is neutrally stable for pure inertial motion.
        u_star = u + dt * du
        v_star = v + dt * dv
        fdt_u = f_u * dt
        fdt_v = f_v * dt
        v_star_at_u = self._v_to_u(v_star)
        u_star_at_v = self._u_to_v(u_star)
        u_new = (u_star + fdt_u * v_star_at_u) / (1.0 + fdt_u**2)
        v_new = (v_star - fdt_v * u_star_at_v) / (1.0 + fdt_v**2)
        u_new = np.where(m.mask_u, u_new, 0.0)
        v_new = np.where(m.mask_v, v_new, 0.0)
        norm = float(np.sqrt(np.sum(m.area * eta_new**2) / np.sum(m.area)))
        return BarotropicState(eta_new, u_new, v_new), norm

    def max_stable_dt(self, cfl: float = 0.7) -> float:
        """Gravity-wave limit on the open faces."""
        m = self.metrics
        c = np.sqrt(GRAVITY * np.maximum(self.depth, 1.0))
        dx_min = min(
            float(m.dxu[m.mask_u].min()) if m.mask_u.any() else np.inf,
            float(m.dyv[m.mask_v].min()) if m.mask_v.any() else np.inf,
        )
        return cfl * dx_min / float(c.max())

    # -- diagnostics --------------------------------------------------------------

    def total_volume(self, state: BarotropicState) -> float:
        """Free-surface volume anomaly (conserved to round-off)."""
        m = self.metrics
        return float(np.sum(m.area[m.mask_c] * state.eta[m.mask_c]))

    def kinetic_energy(self, state: BarotropicState) -> float:
        m = self.metrics
        ke_u = 0.5 * self.h_u * state.u**2
        ke_v = 0.5 * self.h_v * state.v**2
        return float(np.sum(m.area * (ke_u + ke_v)))

    # -- staggering helpers ----------------------------------------------------------

    @staticmethod
    def _v_to_u(v: np.ndarray) -> np.ndarray:
        """Average v (north faces) to u points (east faces): the four
        surrounding v faces of cell pair (j,i),(j,i+1)."""
        v_south = np.vstack([np.zeros((1, v.shape[1])), v[:-1]])
        east = np.roll(v, -1, axis=1)
        east_south = np.roll(v_south, -1, axis=1)
        return 0.25 * (v + v_south + east + east_south)

    @staticmethod
    def _u_to_v(u: np.ndarray) -> np.ndarray:
        west = np.roll(u, 1, axis=1)
        north = np.vstack([u[1:], u[-1:]])
        north_west = np.roll(north, 1, axis=1)
        return 0.25 * (u + west + north + north_west)
