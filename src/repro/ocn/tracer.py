"""Tracer (T, S) transport: upwind advection + implicit vertical diffusion
+ surface forcing — the 20 s tracer substep of LICOM.

First-order upwind keeps tracers monotone (no spurious extrema — the
property the test suite pins), and the flux form conserves tracer content
exactly over the masked domain.  Vertical diffusion reuses the
Canuto-like coefficients from :mod:`repro.ocn.mixing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..utils.units import CP_OCEAN, RHO_OCEAN
from .metrics import CGridMetrics
from .mixing import MixingParams, canuto_kappa, implicit_vertical_diffusion, richardson_number
from .baroclinic import linear_eos

__all__ = ["TracerSolver"]


@dataclass
class TracerSolver:
    """Advection-diffusion stepper for level-stack tracers."""

    metrics: CGridMetrics
    mask3d: np.ndarray
    dz: np.ndarray
    horizontal_diffusivity: float = 5.0e2
    advection_scheme: str = "upwind"   # or "muscl" (2nd order, limited)
    mixing: MixingParams = field(default_factory=MixingParams)

    def __post_init__(self) -> None:
        if self.mask3d.shape[1:] != self.metrics.shape:
            raise ValueError("mask3d must match the horizontal grid")
        m = self.metrics
        self.mask_u3 = (self.mask3d & np.roll(self.mask3d, -1, axis=2)) & m.mask_u[None]
        mv = np.zeros_like(self.mask3d)
        mv[:, :-1] = self.mask3d[:, :-1] & self.mask3d[:, 1:]
        self.mask_v3 = mv & m.mask_v[None]

    @staticmethod
    def _face_values(c: np.ndarray, vel: np.ndarray, shift, scheme: str) -> np.ndarray:
        """Upwind or minmod-limited second-order face reconstruction.

        ``shift(a, k)`` must return the value at index i+k along the face
        axis.  The face sits between cells i and i+1.
        """
        c_p1 = shift(c, 1)   # cell i+1 (downwind for vel > 0)
        if scheme == "upwind":
            return np.where(vel > 0, c, c_p1)
        # MUSCL with the minmod limiter: face value = upwind cell + half of
        # the limited slope at the upwind cell.  Reverts to first order at
        # extrema, keeping the scheme essentially monotone.
        c_m1 = shift(c, -1)  # cell i-1
        c_p2 = shift(c, 2)   # cell i+2

        def minmod(a, b):
            return np.where(a * b > 0, np.sign(a) * np.minimum(np.abs(a), np.abs(b)), 0.0)

        slope_i = minmod(c - c_m1, c_p1 - c)        # slope at cell i
        slope_p1 = minmod(c_p1 - c, c_p2 - c_p1)    # slope at cell i+1
        return np.where(vel > 0, c + 0.5 * slope_i, c_p1 - 0.5 * slope_p1)

    def advect(
        self, c: np.ndarray, u: np.ndarray, v: np.ndarray, dt: float,
        scheme: str = "upwind",
    ) -> np.ndarray:
        """One flux-form advection step of tracer ``c`` by face velocities.

        ``scheme`` is ``"upwind"`` (first order, the LICOM default here) or
        ``"muscl"`` (second order with a minmod limiter — sharper fronts at
        the same conservation guarantees).
        """
        if scheme not in ("upwind", "muscl"):
            raise ValueError("scheme must be 'upwind' or 'muscl'")
        m = self.metrics
        dz = self.dz.reshape(-1, 1, 1)

        def shift_x(a, k):
            return np.roll(a, -k, axis=2)  # value at column i+k (periodic)

        def shift_y(a, k):
            # Value at row j+k, clamped at the closed y boundaries.
            if k == 0:
                return a
            if k > 0:
                pads = [a[:, -1:]] * k
                return np.concatenate([a[:, k:]] + pads, axis=1)
            k = -k
            pads = [a[:, :1]] * k
            return np.concatenate(pads + [a[:, :-k]], axis=1)

        c_face_u = self._face_values(c, u, shift_x, scheme)
        flux_u = np.where(self.mask_u3, u * c_face_u, 0.0) * m.ly_east[None] * dz

        c_face_v = self._face_values(c, v, shift_y, scheme)
        flux_v = np.where(self.mask_v3, v * c_face_v, 0.0) * m.lx_north[None] * dz

        div = (flux_u - np.roll(flux_u, 1, axis=2)) + (
            flux_v - np.concatenate([np.zeros_like(flux_v[:, :1]), flux_v[:, :-1]], axis=1)
        )
        vol = m.area[None] * dz
        c_new = c - dt * div / vol
        return np.where(self.mask3d, c_new, c)

    def diffuse_horizontal(self, c: np.ndarray, dt: float) -> np.ndarray:
        """Masked explicit horizontal diffusion (small coefficient)."""
        m = self.metrics
        cm = np.where(self.mask3d, c, 0.0)
        east = np.roll(cm, -1, axis=2)
        west = np.roll(cm, 1, axis=2)
        north = np.concatenate([cm[:, 1:], cm[:, -1:]], axis=1)
        south = np.concatenate([cm[:, :1], cm[:, :-1]], axis=1)
        neigh = (
            np.roll(self.mask3d, -1, axis=2).astype(float)
            + np.roll(self.mask3d, 1, axis=2)
            + np.concatenate([self.mask3d[:, 1:], self.mask3d[:, -1:]], axis=1)
            + np.concatenate([self.mask3d[:, :1], self.mask3d[:, :-1]], axis=1)
        )
        scale = (0.5 * (m.dxu + m.dyv)) ** 2
        lap = (east + west + north + south - neigh * cm) / scale[None]
        out = c + dt * self.horizontal_diffusivity * lap
        return np.where(self.mask3d, out, c)

    def step(
        self,
        t: np.ndarray,
        s: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        dt: float,
        surface_heat_flux: Optional[np.ndarray] = None,   # W/m^2, positive down
        surface_fresh_flux: Optional[np.ndarray] = None,  # kg/m^2/s (P - E)
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance (T, S) one tracer substep."""
        t_new = self.diffuse_horizontal(self.advect(t, u, v, dt, self.advection_scheme), dt)
        s_new = self.diffuse_horizontal(self.advect(s, u, v, dt, self.advection_scheme), dt)

        rho = linear_eos(t_new, s_new)
        ri = richardson_number(rho, u, v, self.dz, self.mixing)
        kappa = canuto_kappa(ri, self.mixing)
        t_new = implicit_vertical_diffusion(t_new, kappa, self.dz, dt, self.mask3d)
        s_new = implicit_vertical_diffusion(s_new, kappa, self.dz, dt, self.mask3d)

        surf = self.mask3d[0]
        if surface_heat_flux is not None:
            dT = surface_heat_flux * dt / (RHO_OCEAN * CP_OCEAN * self.dz[0])
            t_new[0] = np.where(surf, t_new[0] + dT, t_new[0])
        if surface_fresh_flux is not None:
            # Freshwater dilutes salinity: dS = -S * F dt / (rho dz).
            dS = -s_new[0] * surface_fresh_flux * dt / (RHO_OCEAN * self.dz[0])
            s_new[0] = np.where(surf, s_new[0] + dS, s_new[0])
        return t_new, s_new

    # -- diagnostics ---------------------------------------------------------

    def content(self, c: np.ndarray) -> float:
        """Volume integral of a tracer over the wet domain."""
        vol = self.metrics.area[None] * self.dz.reshape(-1, 1, 1)
        return float(np.sum(np.where(self.mask3d, c * vol, 0.0)))
