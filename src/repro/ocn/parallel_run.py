"""Distributed execution of the barotropic solver over the simulated MPI
runtime — the end-to-end validation of the whole parallel stack.

Each rank owns a :class:`~repro.parallel.decomp.Block2D` of the tripolar
grid plus a 3-deep halo; every step exchanges (eta, u, v) halos through
:class:`~repro.parallel.halo.StructuredHalo` and then runs the *same*
serial :class:`~repro.ocn.barotropic.BarotropicSolver` arithmetic on the
padded window, keeping only the interior.  Because every stencil reads at
most 3 points away and the halos carry exact copies of the neighbor state,
the distributed run is **bit-for-bit identical** to the serial run — the
paper's §5.1 validation standard, tested in
``tests/test_ocn_parallel_run.py``.

The per-substep stabilization norm is computed with a fixed-order
allreduce; it is a diagnostic only, so it does not perturb the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..grids.tripolar import TripolarGrid
from ..parallel.comm import SimComm, SimWorld
from ..parallel.decomp import Block2D, factor_2d
from ..parallel.halo import StructuredHalo
from .barotropic import BarotropicSolver, BarotropicState
from .metrics import CGridMetrics

__all__ = ["distributed_barotropic_run", "local_window"]

PAD = 3  # halo depth: enough for the two-stage forward-backward stencils


def _window_rows(y0: int, y1: int, nlat: int) -> Tuple[np.ndarray, np.ndarray]:
    """Padded row indices (clamped) and a validity mask for out-of-range
    rows (beyond the south edge / the seam)."""
    rows = np.arange(y0 - PAD, y1 + PAD)
    valid = (rows >= 0) & (rows < nlat)
    return np.clip(rows, 0, nlat - 1), valid


def local_window(
    grid: TripolarGrid,
    metrics: CGridMetrics,
    block: Block2D,
) -> Tuple[CGridMetrics, np.ndarray]:
    """Metrics and depth restricted to a rank's padded window.

    Columns wrap periodically; rows beyond the global domain are cloned
    from the edge but fully masked, so no flux crosses them (matching the
    serial solver's closed south edge and seam).
    """
    y0, y1 = block.y_range
    x0, x1 = block.x_range
    rows, row_valid = _window_rows(y0, y1, grid.nlat)
    cols = np.arange(x0 - PAD, x1 + PAD) % grid.nlon

    def slice2(arr: np.ndarray, fill=None) -> np.ndarray:
        out = arr[np.ix_(rows, cols)].copy()
        if fill is not None:
            out[~row_valid, :] = fill
        return out

    masked = CGridMetrics(
        area=slice2(metrics.area, fill=1.0),
        dxu=slice2(metrics.dxu, fill=1.0),
        dyv=slice2(metrics.dyv, fill=1.0),
        ly_east=slice2(metrics.ly_east, fill=0.0),
        lx_north=slice2(metrics.lx_north, fill=0.0),
        mask_c=slice2(metrics.mask_c, fill=False),
        mask_u=slice2(metrics.mask_u, fill=False),
        mask_v=slice2(metrics.mask_v, fill=False),
        f_c=slice2(metrics.f_c, fill=0.0),
    )
    # The global top row's north faces are closed; a padded window whose
    # top halo rows are clones must keep them closed too (already False
    # via the fill) — and the row *at* the seam keeps its serial mask.
    depth = slice2(grid.depth, fill=0.0)
    return masked, depth


def distributed_barotropic_run(
    grid: TripolarGrid,
    n_steps: int,
    n_ranks: int,
    dt: Optional[float] = None,
    taux: Optional[np.ndarray] = None,
    initial_eta: Optional[np.ndarray] = None,
    obs=None,
) -> Tuple[BarotropicState, List[float]]:
    """Run ``n_steps`` of the barotropic solver on ``n_ranks`` simulated
    MPI ranks; returns the gathered global state and the per-step norms.

    Requires ``grid.nlon`` divisible by the process-grid x extent (the
    same constraint the tripolar fold exchange carries).  A live ``obs``
    handle is forked per rank: each rank records halo/solve spans and
    counters, and the world's traffic ledger lands in the parent metrics.
    """
    metrics = CGridMetrics.build(grid)
    serial_solver = BarotropicSolver(metrics, grid.depth)
    if dt is None:
        dt = serial_solver.max_stable_dt()
    px, py = factor_2d(n_ranks, aspect=grid.nlon / grid.nlat)
    if grid.nlon % px:
        raise ValueError(
            f"nlon={grid.nlon} must divide evenly over px={px} ranks in x"
        )

    eta0 = initial_eta if initial_eta is not None else np.zeros(metrics.shape)

    def program(comm: SimComm):
        robs = obs.fork(comm.rank) if (obs is not None and obs.enabled) else None
        block = Block2D(grid.nlat, grid.nlon, py, px, comm.rank)
        local_metrics, local_depth = local_window(grid, metrics, block)
        solver = BarotropicSolver(local_metrics, local_depth)
        halo = StructuredHalo(block, width=PAD, tripolar_fold=False)

        y0, y1 = block.y_range
        x0, x1 = block.x_range
        ny, nx = block.shape
        shape_pad = (ny + 2 * PAD, nx + 2 * PAD)

        def padded_from_global(garr: np.ndarray) -> np.ndarray:
            rows, row_valid = _window_rows(y0, y1, grid.nlat)
            cols = np.arange(x0 - PAD, x1 + PAD) % grid.nlon
            out = garr[np.ix_(rows, cols)].copy()
            out[~row_valid, :] = 0.0
            return out

        state = BarotropicState(
            eta=padded_from_global(eta0),
            u=np.zeros(shape_pad),
            v=np.zeros(shape_pad),
        )
        taux_pad = padded_from_global(taux) if taux is not None else None
        norms: List[float] = []
        interior = (slice(PAD, -PAD), slice(PAD, -PAD))

        for istep in range(n_steps):
            if robs is not None:
                robs.tracer.begin("ocn.parallel_step", step=istep)
            # Refresh halos from the owning ranks.
            if robs is not None:
                with robs.span("ocn.halo_exchange"):
                    for field in (state.eta, state.u, state.v):
                        halo.exchange(comm, field)
                robs.counter("ocn.halo_exchanges").inc(3)
            else:
                for field in (state.eta, state.u, state.v):
                    halo.exchange(comm, field)
            if robs is not None:
                robs.tracer.begin("ocn.solve")
            new_state, _ = solver.step(state, dt, taux=taux_pad)
            # Keep only the interior (halo rings are stencil-contaminated).
            state.eta[interior] = new_state.eta[interior]
            state.u[interior] = new_state.u[interior]
            state.v[interior] = new_state.v[interior]
            if robs is not None:
                robs.tracer.end("ocn.solve")

            # Global stabilization norm: fixed-order reduction over ranks,
            # same normalization as the serial solver (total area; eta is
            # zero on land anyway).
            m = local_metrics
            local_sum = float(np.sum(m.area[interior] * state.eta[interior] ** 2))
            local_area = float(np.sum(m.area[interior]))
            total = comm.allreduce(np.array([local_sum, local_area]), op="sum")
            norms.append(float(np.sqrt(total[0] / max(total[1], 1e-300))))
            if robs is not None:
                robs.tracer.end("ocn.parallel_step")

        return (
            block.y_range,
            block.x_range,
            state.eta[interior].copy(),
            state.u[interior].copy(),
            state.v[interior].copy(),
            norms,
        )

    world = SimWorld(n_ranks, timeout=60.0)
    results = world.run(program)
    if obs is not None and obs.enabled:
        obs.metrics.record_traffic(world.ledger, prefix="ocn.comm")

    gathered = BarotropicState.zeros(metrics.shape)
    norms = results[0][5]
    for (yr, xr, eta, u, v, _n) in results:
        ys = slice(yr[0], yr[1])
        xs = slice(xr[0], xr[1])
        gathered.eta[ys, xs] = eta
        gathered.u[ys, xs] = u
        gathered.v[ys, xs] = v
    return gathered, norms
