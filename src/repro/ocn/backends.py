"""Deprecated backend-selection shim.

The LICOM implementation-portfolio selection (§5.1.1) moved to
:mod:`repro.pp.backends` so that backend choice is component-agnostic —
the same execution space now drives atm/ice/lnd kernels through the
shared ``ComponentContext``.  Import :func:`repro.pp.select_backend` and
``repro.pp.BACKEND_PORTFOLIO`` instead; this module lazily forwards the
old names and emits a :class:`DeprecationWarning` on first use.
"""

from __future__ import annotations

import warnings

__all__ = ["select_backend", "BACKEND_PORTFOLIO"]

_FORWARDED = frozenset(__all__)


def __getattr__(name: str):
    if name in _FORWARDED:
        warnings.warn(
            f"repro.ocn.backends.{name} is deprecated; "
            f"import {name} from repro.pp instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..pp import backends as _backends

        return getattr(_backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _FORWARDED)
