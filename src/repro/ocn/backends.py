"""Removed backend-selection shim (hard error since the calibration PR).

The LICOM implementation-portfolio selection (§5.1.1) moved to
:mod:`repro.pp.backends` so that backend choice is component-agnostic —
the same execution space drives atm/ice/lnd kernels through the shared
``ComponentContext``.  The deprecation shim that forwarded the old names
with a :class:`DeprecationWarning` has completed its cycle: importing
``select_backend`` / ``BACKEND_PORTFOLIO`` from here now raises
:class:`ImportError` with the migration target, instead of silently
keeping stale call sites alive.
"""

from __future__ import annotations

__all__: list = []

_REMOVED = frozenset({"select_backend", "BACKEND_PORTFOLIO"})


def __getattr__(name: str):
    if name in _REMOVED:
        raise ImportError(
            f"repro.ocn.backends.{name} was removed after its deprecation "
            f"cycle; import {name} from repro.pp instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
