"""Backend selection (compatibility shim).

The LICOM implementation-portfolio selection (§5.1.1) moved to
:mod:`repro.pp.backends` so that backend choice is component-agnostic —
the same execution space now drives atm/ice/lnd kernels through the
shared ``ComponentContext``.  This module re-exports the public names so
existing ``from repro.ocn.backends import select_backend`` call sites
keep working.
"""

from __future__ import annotations

from ..pp.backends import BACKEND_PORTFOLIO, select_backend

__all__ = ["select_backend", "BACKEND_PORTFOLIO"]
