"""C-grid metrics and masked finite-volume operators on the tripolar grid.

LICOM solves on an orthogonal curvilinear (tripolar) grid with Arakawa
C-staggering: cell-center scalars (eta, T, S), zonal velocity on east
faces, meridional velocity on north faces.  This module extracts the face
lengths / center spacings / areas from the :class:`~repro.grids.tripolar.
TripolarGrid` corner arrays and provides the masked divergence/gradient
operators the barotropic and tracer solvers share.

Boundary conventions: longitude is periodic; the southern edge is closed;
the tripolar **seam** (northern edge between the two displaced poles) is
treated as closed in this serial reference solver — both grid poles are
land on the synthetic earth, and the fold *topology* is exercised by the
parallel halo layer (see DESIGN.md, "Known simplifications").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..grids.sphere import arc_length
from ..grids.tripolar import TripolarGrid

__all__ = ["CGridMetrics", "divergence_c", "grad_x", "grad_y"]


@dataclass
class CGridMetrics:
    """Face lengths, center spacings, areas, and staggered masks.

    Index conventions for cell (j, i):

    * ``u[j, i]`` lives on the **east** face, between centers (j,i), (j,i+1);
    * ``v[j, i]`` lives on the **north** face, between centers (j,i), (j+1,i);
    * east faces wrap periodically in i; the last row's north faces are
      closed (seam), as is the first row's south edge.
    """

    area: np.ndarray       # (nlat, nlon) cell areas, m^2
    dxu: np.ndarray        # (nlat, nlon) center spacing across east face, m
    dyv: np.ndarray        # (nlat, nlon) center spacing across north face, m
    ly_east: np.ndarray    # (nlat, nlon) east-face lengths, m
    lx_north: np.ndarray   # (nlat, nlon) north-face lengths, m
    mask_c: np.ndarray     # (nlat, nlon) True where cell is ocean
    mask_u: np.ndarray     # (nlat, nlon) True where the east face is open
    mask_v: np.ndarray     # (nlat, nlon) True where the north face is open
    f_c: np.ndarray        # (nlat, nlon) Coriolis parameter at centers

    @staticmethod
    def build(grid: TripolarGrid) -> "CGridMetrics":
        r = grid.radius
        corners = grid.corners  # (nlat+1, nlon+1, 3)
        centers = grid.centers

        # East face of (j, i): corners (j, i+1) -> (j+1, i+1).
        ly_east = r * arc_length(corners[:-1, 1:], corners[1:, 1:])
        # North face of (j, i): corners (j+1, i) -> (j+1, i+1).
        lx_north = r * arc_length(corners[1:, :-1], corners[1:, 1:])

        # Center spacings (periodic wrap in i for dxu).
        east_nbr = np.roll(centers, -1, axis=1)
        dxu = r * arc_length(centers, east_nbr)
        dyv = np.empty_like(dxu)
        dyv[:-1] = r * arc_length(centers[:-1], centers[1:])
        dyv[-1] = dyv[-2]  # seam row: nominal value (faces closed anyway)

        mask_c = grid.mask
        mask_u = mask_c & np.roll(mask_c, -1, axis=1)
        mask_v = np.zeros_like(mask_c)
        mask_v[:-1] = mask_c[:-1] & mask_c[1:]
        # Seam faces (last row) stay closed: mask_v[-1] already False.

        from ..utils.units import EARTH_OMEGA

        f_c = 2.0 * EARTH_OMEGA * np.sin(grid.lat)

        # Degenerate faces near the seam can have ~zero length; keep the
        # metric strictly positive where the face is open.
        dxu = np.maximum(dxu, 1.0)
        dyv = np.maximum(dyv, 1.0)
        area = np.maximum(grid.area, 1.0)
        return CGridMetrics(
            area=area,
            dxu=dxu,
            dyv=dyv,
            ly_east=np.maximum(ly_east, 0.0),
            lx_north=np.maximum(lx_north, 0.0),
            mask_c=mask_c,
            mask_u=mask_u,
            mask_v=mask_v,
            f_c=f_c,
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return self.area.shape


def divergence_c(m: CGridMetrics, flux_u: np.ndarray, flux_v: np.ndarray) -> np.ndarray:
    """Divergence at centers of face-normal *transports* (m^3/s per face).

    ``flux_u[j, i]`` is the transport through the east face of (j, i)
    (positive eastward), ``flux_v`` through the north face (positive
    northward); closed faces must carry zero flux (enforced here).
    """
    fu = np.where(m.mask_u, flux_u, 0.0)
    fv = np.where(m.mask_v, flux_v, 0.0)
    div = (fu - np.roll(fu, 1, axis=1)) + (fv - np.vstack([np.zeros((1, fv.shape[1])), fv[:-1]]))
    return np.where(m.mask_c, div / m.area, 0.0)


def grad_x(m: CGridMetrics, phi: np.ndarray) -> np.ndarray:
    """x-gradient at east faces: (phi[j,i+1] - phi[j,i]) / dxu (periodic)."""
    g = (np.roll(phi, -1, axis=1) - phi) / m.dxu
    return np.where(m.mask_u, g, 0.0)


def grad_y(m: CGridMetrics, phi: np.ndarray) -> np.ndarray:
    """y-gradient at north faces: (phi[j+1,i] - phi[j,i]) / dyv."""
    g = np.zeros_like(phi)
    g[:-1] = (phi[1:] - phi[:-1]) / m.dyv[:-1]
    return np.where(m.mask_v, g, 0.0)
