"""LICOM-like ocean component behind the CPL7 contract.

Substep hierarchy per §6.1: **barotropic : baroclinic : tracer =
2 s : 20 s : 20 s** — kept as exact ratios (10 barotropic substeps per
baroclinic step, tracers at the baroclinic step), with the absolute step
set by the barotropic CFL of the grid in use.

The model runs either on the full (nlev, nlat, nlon) box or in
**compressed mode** (§5.2.2), where every prognostic field is stored
packed on wet points and unpacked only at the solver boundary — the memory
ledger exposes the ~30-40 % resident-state saving.

Boundary exchange: imports wind stress, net heat flux, and freshwater
flux from the coupler; exports SST, SSH, surface currents, and the
freezing-potential mask the sea-ice component consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..grids.tripolar import TripolarGrid
from ..utils.timers import TimerRegistry
from .barotropic import BarotropicSolver, BarotropicState
from .baroclinic import BaroclinicSolver
from .compress import Compressor
from .metrics import CGridMetrics
from .tracer import TracerSolver

__all__ = ["LicomConfig", "LicomModel"]

BAROTROPIC_SUBSTEPS = 10  # 20 s / 2 s

T_FREEZE = -1.8  # deg C, seawater freezing point


@dataclass
class LicomConfig:
    nlon: int = 96
    nlat: int = 64
    n_levels: int = 20
    cfl: float = 0.6
    compressed: bool = False
    start_time: float = 0.0
    initial_t_surface: float = 18.0   # deg C
    initial_s: float = 35.0           # psu


class LicomModel:
    """The ocean component (init / run / finalize, import / export)."""

    name = "ocn"

    def __init__(
        self,
        config: LicomConfig | None = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        self.config = config if config is not None else LicomConfig()
        self.timers = timers if timers is not None else TimerRegistry()
        self._initialized = False
        self._finalized = False

    # -- CPL7 contract -----------------------------------------------------------

    def init(self) -> None:
        cfg = self.config
        self.grid = TripolarGrid.build(cfg.nlon, cfg.nlat, n_levels=cfg.n_levels)
        self.metrics = CGridMetrics.build(self.grid)
        self.mask3d = self.grid.levels_mask()
        self.dz = np.diff(self.grid.z_interfaces)

        self.barotropic = BarotropicSolver(self.metrics, self.grid.depth)
        self.baroclinic = BaroclinicSolver(self.metrics, self.mask3d, self.dz)
        self.tracers = TracerSolver(self.metrics, self.mask3d, self.dz)

        self.dt_barotropic = self.barotropic.max_stable_dt(cfg.cfl)
        self.dt_baroclinic = BAROTROPIC_SUBSTEPS * self.dt_barotropic
        self.dt_tracer = self.dt_baroclinic

        shape3 = self.mask3d.shape
        # Initial stratification: warm surface decaying with depth, with a
        # meridional anomaly that also decays with depth (a deep anomaly
        # confined to the surface would leave a permanent abyssal pressure
        # gradient that this advection-free baroclinic core cannot
        # equilibrate).
        z_mid = 0.5 * (self.grid.z_interfaces[:-1] + self.grid.z_interfaces[1:])
        t_prof = 2.0 + (cfg.initial_t_surface - 2.0) * np.exp(-z_mid / 800.0)
        merid = (cfg.initial_t_surface + 8.0) * np.cos(self.grid.lat) ** 2 - (
            cfg.initial_t_surface - 2.0
        )
        decay = np.exp(-z_mid / 500.0)
        self.t = np.where(
            self.mask3d,
            t_prof[:, None, None] + merid[None, :, :] * decay[:, None, None],
            0.0,
        )
        self.s = np.where(self.mask3d, cfg.initial_s, 0.0)
        self.u = np.zeros(shape3)
        self.v = np.zeros(shape3)
        self.bt = BarotropicState.zeros(self.metrics.shape)

        self.compressor = Compressor(self.mask3d) if cfg.compressed else None

        # Forcing slots (set by import_state).
        self.taux = np.zeros(self.metrics.shape)
        self.tauy = np.zeros(self.metrics.shape)
        self.heat_flux = np.zeros(self.metrics.shape)
        self.fresh_flux = np.zeros(self.metrics.shape)

        self.time = cfg.start_time
        self.n_steps = 0
        self._initialized = True

    def finalize(self) -> Dict[str, float]:
        self._check_alive()
        summary = {
            "steps": float(self.n_steps),
            "simulated_seconds": self.time - self.config.start_time,
            "heat_content": self.tracers.content(self.t),
            "salt_content": self.tracers.content(self.s),
        }
        self._finalized = True
        return summary

    # -- Component protocol (shared context + uniform coupling surface) -------------

    def set_context(self, ctx) -> None:
        """Bind the shared ComponentContext: the ocean kernels join the
        shared hash registry and dispatch on the context's space."""
        self._ctx = ctx
        from . import kernels as _k

        for fn in (_k.eos_kernel, _k.canuto_kernel, _k.baroclinic_pressure_kernel):
            ctx.kernels.register(fn)

    def pre_coupling(self, imports: Dict[str, np.ndarray]) -> None:
        self.import_state(imports)

    def post_coupling(self) -> Dict[str, np.ndarray]:
        return self.export_state()

    def state(self) -> Dict[str, np.ndarray]:
        """The prognostic state (what restarts save and the precision
        policy round-trips)."""
        self._check_alive()
        return {
            "t": self.t, "s": self.s, "u": self.u, "v": self.v,
            "eta": self.bt.eta, "bt_u": self.bt.u, "bt_v": self.bt.v,
        }

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        self._check_alive()
        for key in ("t", "s", "u", "v"):
            if key in state:
                setattr(self, key, state[key])
        if "eta" in state:
            self.bt.eta = state["eta"]
        if "bt_u" in state:
            self.bt.u = state["bt_u"]
        if "bt_v" in state:
            self.bt.v = state["bt_v"]

    # -- boundary exchange ----------------------------------------------------------

    def import_state(self, fields: Dict[str, np.ndarray]) -> None:
        """Receive atmosphere/ice forcing (already remapped to this grid)."""
        self._check_alive()
        shape = self.metrics.shape
        for key, target in (
            ("taux", "taux"), ("tauy", "tauy"),
            ("heat_flux", "heat_flux"), ("fresh_flux", "fresh_flux"),
        ):
            if key in fields:
                arr = np.asarray(fields[key])
                if arr.shape != shape:
                    raise ValueError(f"{key} must be (nlat, nlon)")
                setattr(self, target, np.where(self.metrics.mask_c, arr, 0.0))

    def export_state(self) -> Dict[str, np.ndarray]:
        self._check_alive()
        return {
            "sst": self.t[0].copy(),
            "sss": self.s[0].copy(),
            "ssh": self.bt.eta.copy(),
            "u_surf": self.u[0] + self.bt.u,
            "v_surf": self.v[0] + self.bt.v,
            "freezing": (self.t[0] <= T_FREEZE) & self.mask3d[0],
        }

    # -- stepping ---------------------------------------------------------------------

    def step(self, dt: Optional[float] = None) -> None:
        """One baroclinic step = 10 barotropic substeps + momentum + tracers.

        With an explicit ``dt`` (the Component-protocol form) the model
        advances ``round(dt / dt_baroclinic)`` internal steps."""
        if dt is not None:
            self.run(max(1, int(round(dt / self.dt_baroclinic))))
            return
        self._check_alive()
        with self.timers.timed("ocn_run"):
            with self.timers.timed("ocn_barotropic"):
                for _ in range(BAROTROPIC_SUBSTEPS):
                    self.bt, _ = self.barotropic.step(
                        self.bt, self.dt_barotropic, self.taux, self.tauy
                    )
            with self.timers.timed("ocn_baroclinic"):
                self.u, self.v = self.baroclinic.step(
                    self.u, self.v, self.t, self.s, self.dt_baroclinic,
                    self.taux, self.tauy,
                )
            with self.timers.timed("ocn_tracer"):
                u_tot = self.u + self.bt.u[None]
                v_tot = self.v + self.bt.v[None]
                self.t, self.s = self.tracers.step(
                    self.t, self.s, u_tot, v_tot, self.dt_tracer,
                    surface_heat_flux=self.heat_flux,
                    surface_fresh_flux=self.fresh_flux,
                )
                # Seawater cannot cool below freezing; the deficit is the
                # ice-formation signal exported to the sea-ice component.
                self.t = np.where(
                    self.mask3d, np.maximum(self.t, T_FREEZE), self.t
                )
        self.time += self.dt_baroclinic
        self.n_steps += 1

    def run(self, n_steps: int) -> None:
        for _ in range(n_steps):
            self.step()

    # -- restart I/O (subfile format, §5.2.5) --------------------------------------------

    def save_restart(self, directory) -> None:
        """Write the prognostic state as a subfile restart set."""
        self._check_alive()
        from ..io.restart import save_restart

        save_restart(
            directory,
            fields={
                "t": self.t, "s": self.s, "u": self.u, "v": self.v,
                "eta": self.bt.eta, "bt_u": self.bt.u, "bt_v": self.bt.v,
                "taux": self.taux, "tauy": self.tauy,
                "heat_flux": self.heat_flux, "fresh_flux": self.fresh_flux,
            },
            scalars={"time": self.time, "n_steps": float(self.n_steps)},
        )

    def load_restart(self, directory) -> None:
        """Restore the prognostic state bit-exactly from a restart set."""
        self._check_alive()
        from ..io.restart import load_restart

        fields, scalars = load_restart(directory)
        self.t = fields["t"]
        self.s = fields["s"]
        self.u = fields["u"]
        self.v = fields["v"]
        self.bt.eta = fields["eta"]
        self.bt.u = fields["bt_u"]
        self.bt.v = fields["bt_v"]
        self.taux = fields["taux"]
        self.tauy = fields["tauy"]
        self.heat_flux = fields["heat_flux"]
        self.fresh_flux = fields["fresh_flux"]
        self.time = scalars["time"]
        self.n_steps = int(scalars["n_steps"])

    # -- compression ledger ------------------------------------------------------------

    def memory_report(self) -> Dict[str, float]:
        """Resident prognostic-state bytes, full vs compressed (§5.2.2)."""
        n_fields = 4  # t, s, u, v
        comp = self.compressor if self.compressor is not None else Compressor(self.mask3d)
        full, packed = comp.memory_bytes(n_fields=n_fields)
        return {
            "full_bytes": float(full),
            "packed_bytes": float(packed),
            "reduction": comp.reduction,
        }

    def _check_alive(self) -> None:
        if not self._initialized:
            raise RuntimeError("model not initialized (call init())")
        if self._finalized:
            raise RuntimeError("model already finalized")
