"""LICOM-like ocean component: tripolar C-grid solvers, Canuto-like
mixing, non-ocean-point compression, and the CPL7 component contract."""

from .barotropic import BarotropicSolver, BarotropicState
from .baroclinic import BaroclinicSolver, linear_eos
from .compress import (
    Compressor,
    block_owner_map,
    compressed_equals_full,
    load_stats,
    wet_partition,
    wet_topology_matrix,
)
from .metrics import CGridMetrics, divergence_c, grad_x, grad_y
from .mixing import (
    MixingParams,
    canuto_kappa,
    implicit_vertical_diffusion,
    richardson_number,
)
from .model import LicomConfig, LicomModel
from .parallel_run import distributed_barotropic_run, local_window
from .tracer import TracerSolver

__all__ = [
    "CGridMetrics",
    "divergence_c",
    "grad_x",
    "grad_y",
    "BarotropicSolver",
    "BarotropicState",
    "BaroclinicSolver",
    "linear_eos",
    "TracerSolver",
    "MixingParams",
    "richardson_number",
    "canuto_kappa",
    "implicit_vertical_diffusion",
    "Compressor",
    "compressed_equals_full",
    "wet_partition",
    "load_stats",
    "block_owner_map",
    "wet_topology_matrix",
    "LicomConfig",
    "LicomModel",
    "distributed_barotropic_run",
    "local_window",
]
