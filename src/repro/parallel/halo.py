"""Halo (ghost-cell) exchange for block-decomposed structured grids and
index-list exchange for unstructured grids.

Two exchangers are provided:

* :class:`StructuredHalo` — width-``w`` halos on a 2-D block decomposition
  with periodic longitude and an optional tripolar fold across the top row
  (the LICOM grid's treatment of the two displaced north poles).
* :class:`GraphHalo` — generic send/recv index lists, used by the
  icosahedral atmosphere and by the ocean component after non-ocean point
  compression rebuilds its communication topology.

Both operate through a :class:`repro.parallel.comm.SimComm`, so every
exchanged byte lands in the traffic ledger the machine model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .comm import Request, SimComm
from .decomp import Block2D

__all__ = ["StructuredHalo", "GraphHalo", "local_with_halo"]


def local_with_halo(local: np.ndarray, width: int) -> np.ndarray:
    """Allocate a halo-padded array with the local field in its interior."""
    if local.ndim < 2:
        raise ValueError("expected at least a 2-D (ny, nx) field")
    ny, nx = local.shape[:2]
    padded = np.zeros((ny + 2 * width, nx + 2 * width) + local.shape[2:], dtype=local.dtype)
    padded[width : width + ny, width : width + nx] = local
    return padded


@dataclass
class StructuredHalo:
    """Halo exchanger for one rank of a 2-D block decomposition.

    Parameters
    ----------
    block:
        This rank's :class:`Block2D` placement.
    width:
        Halo width in grid points.
    periodic_x:
        Longitude wrap (on for global ocean grids).
    tripolar_fold:
        If True, the top global row exchanges with itself reversed in x —
        the tripolar grid's seam between its two artificial north poles.
    """

    block: Block2D
    width: int = 1
    periodic_x: bool = True
    tripolar_fold: bool = False

    _TAG_BASE = 7000

    def exchange(self, comm: SimComm, padded: np.ndarray) -> None:
        """In-place halo update of a halo-padded local array.

        The exchange is the standard two-phase scheme (x sweep then y
        sweep) so that corner halos are filled without diagonal messages —
        the same trick production models use to halve message count.
        """
        w = self.width
        ny, nx = padded.shape[0] - 2 * w, padded.shape[1] - 2 * w
        if ny != self.block.shape[0] or nx != self.block.shape[1]:
            raise ValueError("padded array does not match block shape")

        self._sweep_x(comm, padded, w)
        self._sweep_y(comm, padded, w)

    # -- internals ----------------------------------------------------------

    def _post(self, comm: SimComm, dest: int, tag: int, buf: np.ndarray) -> Request:
        return comm.isend(np.ascontiguousarray(buf), dest, tag=tag)

    def _sweep_x(self, comm: SimComm, padded: np.ndarray, w: int) -> None:
        left = self.block.neighbor(0, -1, periodic_x=self.periodic_x)
        right = self.block.neighbor(0, +1, periodic_x=self.periodic_x)
        reqs: List[Request] = []
        if right is not None:
            reqs.append(self._post(comm, right, self._TAG_BASE + 0, padded[:, -2 * w : -w]))
        if left is not None:
            reqs.append(self._post(comm, left, self._TAG_BASE + 1, padded[:, w : 2 * w]))
        if left is not None:
            padded[:, :w] = comm.recv(source=left, tag=self._TAG_BASE + 0)
        if right is not None:
            padded[:, -w:] = comm.recv(source=right, tag=self._TAG_BASE + 1)
        Request.waitall(reqs)

    def _sweep_y(self, comm: SimComm, padded: np.ndarray, w: int) -> None:
        down = self.block.neighbor(-1, 0)   # toward j=0 (south)
        up = self.block.neighbor(+1, 0)     # toward j=ny-1 (north)
        reqs: List[Request] = []
        if up is not None:
            reqs.append(self._post(comm, up, self._TAG_BASE + 2, padded[-2 * w : -w, :]))
        if down is not None:
            reqs.append(self._post(comm, down, self._TAG_BASE + 3, padded[w : 2 * w, :]))
        if down is not None:
            padded[:w, :] = comm.recv(source=down, tag=self._TAG_BASE + 2)
        if up is not None:
            padded[-w:, :] = comm.recv(source=up, tag=self._TAG_BASE + 3)
        Request.waitall(reqs)

        if self.tripolar_fold and up is None:
            self._fold(comm, padded, w)

    def _fold(self, comm: SimComm, padded: np.ndarray, w: int) -> None:
        """Tripolar seam: the top row maps to itself with x reversed.

        A point at global longitude index i on the last row is adjacent
        (across the seam) to the point at ``nxg - 1 - i``.  The partner
        block is therefore the x-mirrored block in the top process row.
        """
        if self.block.nx % self.block.px:
            raise ValueError(
                "tripolar fold requires nx divisible by px so that mirrored "
                "blocks align exactly"
            )
        iy, ix = self.block.coords
        partner_ix = self.block.px - 1 - ix
        partner = iy * self.block.px + partner_ix
        # Send my top interior rows; receive partner's, reversed in x.
        send = np.ascontiguousarray(padded[-2 * w : -w, w:-w][::-1, ::-1])
        if partner == comm.rank:
            padded[-w:, w:-w] = send
        else:
            req = comm.isend(send, partner, tag=self._TAG_BASE + 4)
            padded[-w:, w:-w] = comm.recv(source=partner, tag=self._TAG_BASE + 4)
            req.wait()


class GraphHalo:
    """Index-list halo exchange for unstructured or compressed grids.

    Parameters
    ----------
    send_lists:
        Mapping neighbor rank -> local indices whose values that neighbor
        needs (into the *owned* portion of the local array).
    recv_lists:
        Mapping neighbor rank -> local indices (into the *halo* portion of
        the local array) to be filled from that neighbor, in the order the
        neighbor sends them.

    The two maps must be mutually consistent across ranks: ``len(
    send_lists[q])`` on rank p equals ``len(recv_lists[p])`` on rank q.
    """

    _TAG = 7100

    def __init__(
        self,
        send_lists: Dict[int, np.ndarray],
        recv_lists: Dict[int, np.ndarray],
    ) -> None:
        self.send_lists = {r: np.asarray(ix, dtype=np.int64) for r, ix in sorted(send_lists.items())}
        self.recv_lists = {r: np.asarray(ix, dtype=np.int64) for r, ix in sorted(recv_lists.items())}

    @property
    def n_neighbors(self) -> int:
        return len(set(self.send_lists) | set(self.recv_lists))

    def bytes_per_exchange(self, itemsize: int = 8, n_fields: int = 1) -> int:
        """Outgoing bytes per exchange — the machine model's halo term."""
        n = sum(len(ix) for ix in self.send_lists.values())
        return n * itemsize * n_fields

    def exchange(self, comm: SimComm, values: np.ndarray) -> None:
        """Fill the halo entries of ``values`` in place.

        ``values`` holds owned entries followed by halo entries; the index
        lists address it directly.
        """
        reqs = [
            comm.isend(np.ascontiguousarray(values[ix]), nbr, tag=self._TAG)
            for nbr, ix in self.send_lists.items()
        ]
        for nbr, ix in self.recv_lists.items():
            values[ix] = comm.recv(source=nbr, tag=self._TAG)
        Request.waitall(reqs)

    @staticmethod
    def from_owners(
        owners: np.ndarray,
        needed: Dict[int, np.ndarray],
        rank: int,
        global_to_local: Dict[int, int],
        halo_global: Sequence[int],
    ) -> "GraphHalo":
        """Build exchange lists from an owner array and halo requirements.

        Parameters
        ----------
        owners:
            Global owner rank per global index.
        needed:
            For *every* rank r, the sorted global indices r needs as halo
            (each rank can compute this locally from the mesh; passing the
            full map keeps this a deterministic pure function for tests).
        rank:
            This rank.
        global_to_local:
            This rank's global->local index map for owned entries.
        halo_global:
            Global indices of this rank's halo entries, in local order
            (owned entries come first in the local array).
        """
        send_lists: Dict[int, List[int]] = {}
        for other, globs in needed.items():
            if other == rank:
                continue
            mine = [g for g in np.asarray(globs) if owners[g] == rank]
            if mine:
                send_lists[other] = [global_to_local[g] for g in mine]

        n_owned = len(global_to_local)
        recv_lists: Dict[int, List[int]] = {}
        for local_off, g in enumerate(halo_global):
            owner = int(owners[g])
            recv_lists.setdefault(owner, []).append(n_owned + local_off)
        # Receive order must match the sender's send order (sorted by the
        # sender's local index == sorted by global index for block owners);
        # we therefore sort each recv list by the halo entry's global index.
        for owner in recv_lists:
            pairs = sorted(
                zip([halo_global[i - n_owned] for i in recv_lists[owner]], recv_lists[owner])
            )
            recv_lists[owner] = [loc for _, loc in pairs]
        for other in send_lists:
            send_lists[other] = sorted(send_lists[other])
        return GraphHalo(
            {r: np.array(v, dtype=np.int64) for r, v in send_lists.items()},
            {r: np.array(v, dtype=np.int64) for r, v in recv_lists.items()},
        )
