"""A simulated MPI runtime executed with threads.

The paper runs on up to 37.2 million MPI ranks.  This library splits that
concern in two: *functional* parallel semantics are validated here with a
real SPMD runtime (each rank is a thread; messages really move between
ranks), while *performance at scale* is predicted by the analytic machine
model in :mod:`repro.machine`, fed by the exact message counts/sizes this
runtime records in its :class:`TrafficLedger`.

The API deliberately mirrors mpi4py (``send/recv/isend/irecv``,
``bcast/scatter/gather/allgather/allreduce/alltoall/barrier``), so the
component code reads like ordinary MPI code.

Example
-------
>>> from repro.parallel import SimWorld
>>> def program(comm):
...     import numpy as np
...     x = np.array([float(comm.rank)])
...     return comm.allreduce(x, op="sum")[0]
>>> SimWorld(4).run(program)
[6.0, 6.0, 6.0, 6.0]
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SimWorld",
    "SimComm",
    "Request",
    "TrafficLedger",
    "CollectiveCost",
    "CommTransientError",
    "CommTimeoutError",
    "CommRevokedError",
    "RankFailure",
    "ElasticOutcome",
]

ANY_TAG = -1


class CommTransientError(RuntimeError):
    """A send failed transiently (injected link glitch); retrying the same
    send may succeed.  Carries the offending (src, dst, tag) edge."""

    def __init__(self, src: int, dst: int, tag: int, attempt: int = 0) -> None:
        super().__init__(
            f"transient send failure src={src} dst={dst} tag={tag}"
            f" (attempt {attempt})"
        )
        self.src, self.dst, self.tag, self.attempt = src, dst, tag, attempt


class CommTimeoutError(TimeoutError):
    """A receive timed out — the structured form of the runtime's
    deadlock guard, naming the offending (src, dst, tag) so a dead or
    hung peer is diagnosable instead of an anonymous hang."""

    def __init__(self, src: Optional[int], dst: int, tag: int, timeout: float) -> None:
        super().__init__(
            f"recv on rank {dst} from src={'any' if src is None else src} "
            f"tag={tag} timed out after {timeout}s (dead or hung peer?)"
        )
        self.src, self.dst, self.tag, self.timeout = src, dst, tag, timeout


class RankFailure(RuntimeError):
    """A rank was killed by the fault plan (simulated node failure)."""

    def __init__(self, rank: int, op: str) -> None:
        super().__init__(f"rank {rank} killed by fault plan during {op}")
        self.rank, self.op = rank, op


class CommRevokedError(RuntimeError):
    """The communicator was revoked after a rank failure (the ULFM
    ``MPI_Comm_revoke`` analogue): once a death is known, every further
    operation on the world raises this, so survivors reach the recovery
    path promptly and consistently instead of timing out one by one.
    Carries the raising rank and the dead set as agreed at revoke time."""

    def __init__(self, rank: int, dead) -> None:
        dead = tuple(sorted(dead))
        super().__init__(
            f"communicator revoked on rank {rank}: dead rank(s) {list(dead)}"
        )
        self.rank = rank
        self.dead = dead


@dataclass
class ElasticOutcome:
    """What an elastic run produced: per-rank results for ranks that ran
    to completion, plus the agreed set of dead ranks and the survivors
    whose work was interrupted by the revocation.

    ``results[r]`` is ``None`` for dead and interrupted ranks.  The
    driver decides what to do next — typically ``SimWorld.shrink`` or
    ``SimWorld.promote_spares`` followed by re-decomposition and a
    restore/replay from the last checkpoint.
    """

    results: List[Any]
    dead: Tuple[int, ...]
    interrupted: Tuple[int, ...]

    @property
    def failed(self) -> bool:
        return len(self.dead) > 0


@dataclass
class CollectiveCost:
    """Analytic message accounting for one collective call.

    ``messages`` and ``bytes`` follow the standard algorithm models
    (binomial-tree broadcast/reduce, recursive-doubling allreduce, pairwise
    alltoall); the machine model converts them to time.
    """

    op: str
    n_ranks: int
    messages: int
    bytes: int


class TrafficLedger:
    """Thread-safe record of every message the simulated world moved.

    Point-to-point traffic is recorded per (src, dst) edge, which lets the
    coupler benchmarks compare the all-to-all and non-blocking
    point-to-point rearrangers on real traffic matrices, and lets the
    topology module estimate fat-tree congestion.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.edges: Dict[Tuple[int, int], int] = {}
        self.collectives: List[CollectiveCost] = []

    def record_p2p(self, src: int, dst: int, nbytes: int) -> None:
        with self._lock:
            self.p2p_messages += 1
            self.p2p_bytes += nbytes
            self.edges[(src, dst)] = self.edges.get((src, dst), 0) + nbytes

    def record_collective(self, cost: CollectiveCost) -> None:
        with self._lock:
            self.collectives.append(cost)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self.p2p_bytes + sum(c.bytes for c in self.collectives)

    @property
    def total_messages(self) -> int:
        with self._lock:
            return self.p2p_messages + sum(c.messages for c in self.collectives)

    def traffic_matrix(self, n_ranks: int) -> np.ndarray:
        """Dense (n_ranks, n_ranks) byte matrix of point-to-point traffic."""
        mat = np.zeros((n_ranks, n_ranks), dtype=np.int64)
        with self._lock:
            for (src, dst), nbytes in self.edges.items():
                mat[src, dst] += nbytes
        return mat


def _payload_nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, complex, bool)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(k) + _payload_nbytes(v) for k, v in obj.items())
    return 64  # opaque Python object: nominal envelope size


def _copy_payload(obj: Any) -> Any:
    """Value semantics for sends, like MPI buffer copies."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


class _Mailbox:
    """Per-rank inbound message store with condition-variable waiting."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._messages: deque = deque()  # (src, tag, payload)

    def put(self, src: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._messages.append((src, tag, payload))
            self._cond.notify_all()

    def _match(self, src: Optional[int], tag: int):
        for i, (msrc, mtag, payload) in enumerate(self._messages):
            if (src is None or msrc == src) and (tag == ANY_TAG or mtag == tag):
                del self._messages[i]
                return msrc, mtag, payload
        return None

    def get(
        self,
        src: Optional[int],
        tag: int,
        timeout: float,
        abort: Optional[Callable[[], None]] = None,
    ) -> Tuple[int, int, Any]:
        """Blocking matched receive.  ``abort`` (if given) is polled on
        every wake-up and may raise to interrupt the wait — the hook the
        world's revocation uses to free receivers blocked on a dead peer."""
        deadline = None if timeout is None else (threading.TIMEOUT_MAX if timeout < 0 else timeout)
        with self._cond:
            if abort is not None:
                abort()
            found = self._match(src, tag)
            while found is None:
                if not self._cond.wait(timeout=deadline):
                    raise TimeoutError(
                        f"recv(src={src}, tag={tag}) timed out after {timeout}s"
                    )
                if abort is not None:
                    abort()
                found = self._match(src, tag)
            return found

    def interrupt(self) -> None:
        """Wake every blocked getter so it re-polls its abort hook."""
        with self._cond:
            self._cond.notify_all()

    def probe(self, src: Optional[int], tag: int) -> bool:
        with self._cond:
            for msrc, mtag, _ in self._messages:
                if (src is None or msrc == src) and (tag == ANY_TAG or mtag == tag):
                    return True
            return False


class Request:
    """Handle for a non-blocking operation (like ``MPI.Request``)."""

    def __init__(self, fn: Callable[[], Any], eager: bool = False) -> None:
        self._fn = fn
        self._done = False
        self._result: Any = None
        if eager:
            self.wait()

    def test(self) -> bool:
        return self._done

    def wait(self) -> Any:
        if not self._done:
            self._result = self._fn()
            self._done = True
        return self._result

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> List[Any]:
        return [r.wait() for r in requests]


class _WorldState:
    """Shared state for a set of ranks: mailboxes, rendezvous, ledger."""

    def __init__(self, n_ranks: int, timeout: float, faults: Any = None) -> None:
        self.n_ranks = n_ranks
        self.timeout = timeout
        # Opt-in fault injector (e.g. repro.resilience.CommFaultInjector);
        # None keeps the hot path to a single branch per send/recv.
        self.faults = faults
        self.mailboxes = [_Mailbox() for _ in range(n_ranks)]
        self.ledger = TrafficLedger()
        self.barrier = threading.Barrier(n_ranks)
        self._rendezvous_lock = threading.Lock()
        self._slots: Dict[str, List[Any]] = {}
        # Revocation state (elastic runs): once a rank dies, the world is
        # revoked and every further comm op raises CommRevokedError.
        self.revoked = False
        self.dead: set = set()
        self._death_lock = threading.Lock()

    def revoke(self, dead_rank: int) -> None:
        """Record a death and revoke the world: abort the collective
        barrier and wake every blocked receiver so survivors surface
        :class:`CommRevokedError` promptly instead of timing out."""
        with self._death_lock:
            self.dead.add(dead_rank)
            self.revoked = True
        self.barrier.abort()
        for mb in self.mailboxes:
            mb.interrupt()

    def check_revoked(self, rank: int) -> None:
        if self.revoked:
            with self._death_lock:
                raise CommRevokedError(rank, self.dead)

    def exchange(self, key: str, rank: int, value: Any) -> List[Any]:
        """All ranks deposit a value under ``key``; all get the full list.

        This is the rendezvous primitive on which the collectives are
        built.  Two barriers bracket the slot table so that consecutive
        collectives with the same key cannot race.
        """
        self.check_revoked(rank)
        with self._rendezvous_lock:
            slots = self._slots.setdefault(key, [None] * self.n_ranks)
        slots[rank] = value
        try:
            self.barrier.wait()
            result = list(slots)
            self.barrier.wait()
        except threading.BrokenBarrierError:
            # A revoked world breaks the barrier by design; translate to
            # the structured error so survivors reach the recovery path.
            self.check_revoked(rank)
            raise
        if rank == 0:
            with self._rendezvous_lock:
                self._slots.pop(key, None)
        return result


class SimComm:
    """Per-rank communicator handle (the analogue of an ``MPI.Comm``)."""

    def __init__(self, world: _WorldState, rank: int, color_key: str = "world") -> None:
        self._world = world
        self.rank = rank
        self.size = world.n_ranks
        self._color_key = color_key
        self._coll_seq = 0

    # -- point to point ------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send with value semantics.

        With a fault injector installed on the world, the injector may
        raise (:class:`CommTransientError`, :class:`RankFailure`), corrupt
        the payload, or drop the message (by returning ``None``) before
        anything is delivered or recorded in the ledger.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        if self._world.revoked:
            self._world.check_revoked(self.rank)
        payload = _copy_payload(obj)
        faults = self._world.faults
        if faults is not None:
            payload = faults.on_send(self.rank, dest, tag, payload)
            if payload is None:  # dropped on the wire
                return
        self._world.ledger.record_p2p(self.rank, dest, _payload_nbytes(payload))
        self._world.mailboxes[dest].put(self.rank, tag, payload)

    def recv(
        self,
        source: Optional[int] = None,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; ``source=None`` means any source.

        ``timeout`` overrides the world's default deadlock guard for this
        call; expiry raises :class:`CommTimeoutError` naming the edge.
        """
        faults = self._world.faults
        if faults is not None:
            faults.on_recv(self.rank, source, tag)
        limit = self._world.timeout if timeout is None else timeout
        try:
            _, _, payload = self._world.mailboxes[self.rank].get(
                source, tag, limit,
                abort=lambda: self._world.check_revoked(self.rank),
            )
        except (CommTimeoutError, CommRevokedError):
            raise
        except TimeoutError:
            raise CommTimeoutError(source, self.rank, tag, limit) from None
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        # Buffered semantics: the copy happens immediately, delivery too —
        # the Request exists so caller code matches real non-blocking MPI.
        self.send(obj, dest, tag)
        return Request(lambda: None, eager=True)

    def irecv(
        self,
        source: Optional[int] = None,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Request:
        return Request(lambda: self.recv(source, tag, timeout=timeout))

    def sendrecv(
        self, obj: Any, dest: int, source: Optional[int] = None,
        sendtag: int = 0, recvtag: int = ANY_TAG,
    ) -> Any:
        req = self.isend(obj, dest, sendtag)
        out = self.recv(source, recvtag)
        req.wait()
        return out

    def probe(self, source: Optional[int] = None, tag: int = ANY_TAG) -> bool:
        return self._world.mailboxes[self.rank].probe(source, tag)

    # -- collectives -----------------------------------------------------

    def _key(self, op: str) -> str:
        self._coll_seq += 1
        return f"{self._color_key}:{op}:{self._coll_seq}"

    def barrier(self) -> None:
        self._world.exchange(self._key("barrier"), self.rank, None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        values = self._world.exchange(self._key("bcast"), self.rank, obj if self.rank == root else None)
        payload = values[root]
        if self.rank == root:
            nbytes = _payload_nbytes(payload)
            depth = max(1, math.ceil(math.log2(max(2, self.size))))
            self._world.ledger.record_collective(
                CollectiveCost("bcast", self.size, self.size - 1, nbytes * depth)
            )
            return payload
        return _copy_payload(payload)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("root must supply one object per rank")
        values = self._world.exchange(self._key("scatter"), self.rank, objs if self.rank == root else None)
        chunks = values[root]
        if self.rank == root:
            total = sum(_payload_nbytes(c) for i, c in enumerate(chunks) if i != root)
            self._world.ledger.record_collective(
                CollectiveCost("scatter", self.size, self.size - 1, total)
            )
            return chunks[root]
        return _copy_payload(chunks[self.rank])

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        values = self._world.exchange(self._key("gather"), self.rank, obj)
        if self.rank == root:
            total = sum(_payload_nbytes(v) for i, v in enumerate(values) if i != root)
            self._world.ledger.record_collective(
                CollectiveCost("gather", self.size, self.size - 1, total)
            )
            return [_copy_payload(v) for v in values]
        return None

    def allgather(self, obj: Any) -> List[Any]:
        values = self._world.exchange(self._key("allgather"), self.rank, obj)
        if self.rank == 0:
            per = _payload_nbytes(obj)
            self._world.ledger.record_collective(
                CollectiveCost("allgather", self.size, self.size * (self.size - 1), per * (self.size - 1))
            )
        return [_copy_payload(v) for v in values]

    _OPS: Dict[str, Callable] = {
        "sum": lambda vals: _tree_reduce(vals, lambda a, b: a + b),
        "max": lambda vals: _tree_reduce(vals, np.maximum),
        "min": lambda vals: _tree_reduce(vals, np.minimum),
        "prod": lambda vals: _tree_reduce(vals, lambda a, b: a * b),
    }

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any:
        if op not in self._OPS:
            raise ValueError(f"unknown reduce op {op!r}; choose from {sorted(self._OPS)}")
        values = self._world.exchange(self._key(f"reduce-{op}"), self.rank, obj)
        if self.rank == root:
            nbytes = _payload_nbytes(obj)
            depth = max(1, math.ceil(math.log2(max(2, self.size))))
            self._world.ledger.record_collective(
                CollectiveCost(f"reduce-{op}", self.size, self.size - 1, nbytes * depth)
            )
            return self._OPS[op](values)
        return None

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        if op not in self._OPS:
            raise ValueError(f"unknown reduce op {op!r}; choose from {sorted(self._OPS)}")
        values = self._world.exchange(self._key(f"allreduce-{op}"), self.rank, obj)
        result = self._OPS[op](values)
        if self.rank == 0:
            nbytes = _payload_nbytes(obj)
            depth = max(1, math.ceil(math.log2(max(2, self.size))))
            # Recursive doubling: log2(P) rounds, one message each way/rank.
            self._world.ledger.record_collective(
                CollectiveCost(f"allreduce-{op}", self.size, self.size * depth, nbytes * self.size * depth)
            )
        return _copy_payload(result)

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Each rank supplies one object per destination rank."""
        if len(objs) != self.size:
            raise ValueError("alltoall needs exactly one object per rank")
        values = self._world.exchange(self._key("alltoall"), self.rank, list(objs))
        out = [_copy_payload(values[src][self.rank]) for src in range(self.size)]
        off_diag = sum(_payload_nbytes(o) for i, o in enumerate(objs) if i != self.rank)
        self._world.ledger.record_collective(
            CollectiveCost("alltoall", self.size, self.size - 1, off_diag)
        )
        return out

    def split(self, color: int, key: Optional[int] = None) -> "SimComm":
        """Partition the communicator by color (like ``MPI_Comm_split``).

        The sub-communicator reuses the parent world's mailboxes via a rank
        translation table, so p2p and collectives stay correct within the
        group.
        """
        key = self.rank if key is None else key
        entries = self._world.exchange(self._key("split"), self.rank, (color, key, self.rank))
        members = sorted(
            (k, wr) for (c, k, wr) in entries if c == color
        )
        world_ranks = [wr for _, wr in members]
        return _SubComm(self._world, world_ranks, self.rank, f"{self._color_key}/c{color}")

    # -- accounting ------------------------------------------------------

    @property
    def ledger(self) -> TrafficLedger:
        return self._world.ledger


class _SubComm(SimComm):
    """Communicator over a subset of world ranks (result of ``split``)."""

    def __init__(self, world: _WorldState, world_ranks: List[int], my_world_rank: int, color_key: str) -> None:
        self._world = world
        self._world_ranks = world_ranks
        self.rank = world_ranks.index(my_world_rank)
        self.size = len(world_ranks)
        self._color_key = color_key
        self._coll_seq = 0
        # P2p translates group ranks to world ranks; tags are offset so that
        # subcomm traffic cannot be matched by world-comm receives or by a
        # different split's subcomm (zlib.crc32 is process-stable and
        # identical across ranks for the same color key).
        import zlib

        self._TAG_OFFSET = ((zlib.crc32(color_key.encode()) % 997) + 1) << 20

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        world_dest = self._world_ranks[dest]
        payload = _copy_payload(obj)
        self._world.ledger.record_p2p(
            self._world_ranks[self.rank], world_dest, _payload_nbytes(payload)
        )
        self._world.mailboxes[world_dest].put(
            self.rank, tag + self._TAG_OFFSET, payload
        )

    def recv(
        self,
        source: Optional[int] = None,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        wtag = tag if tag == ANY_TAG else tag + self._TAG_OFFSET
        my_world = self._world_ranks[self.rank]
        limit = self._world.timeout if timeout is None else timeout
        try:
            _, _, payload = self._world.mailboxes[my_world].get(source, wtag, limit)
        except CommTimeoutError:
            raise
        except TimeoutError:
            raise CommTimeoutError(source, self.rank, tag, limit) from None
        return payload

    # For subcomms we route collectives through gather-to-0 + bcast over p2p.
    def _key(self, op: str) -> str:
        self._coll_seq += 1
        return f"{self._color_key}:{op}:{self._coll_seq}"

    def _gather0(self, obj: Any, tag: int) -> Optional[List[Any]]:
        if self.rank == 0:
            out: List[Any] = [None] * self.size
            out[0] = obj
            for _ in range(self.size - 1):
                r, payload = self.recv(tag=tag)
                out[r] = payload
            return out
        self.send((self.rank, obj), 0, tag=tag)
        return None

    def _bcast0(self, obj: Any, tag: int) -> Any:
        if self.rank == 0:
            for dst in range(1, self.size):
                self.send(obj, dst, tag=tag)
            return obj
        return self.recv(source=0, tag=tag)

    def barrier(self) -> None:
        self._gather0((self.rank, None), tag=901)
        self._bcast0(None, tag=902)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if root != 0:
            # Rotate through rank 0.
            if self.rank == root:
                self.send(obj, 0, tag=903)
            if self.rank == 0:
                obj = self.recv(source=root, tag=903)
        return self._bcast0(obj if self.rank == 0 else None, tag=904)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        gathered = self._gather0(obj, tag=905)
        if root == 0:
            return gathered if self.rank == 0 else None
        if self.rank == 0:
            self.send(gathered, root, tag=906)
            return None
        if self.rank == root:
            return self.recv(source=0, tag=906)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        gathered = self._gather0(obj, tag=907)
        return self._bcast0(gathered, tag=908)

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        values = self.allgather(obj)
        return SimComm._OPS[op](values)

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any:
        values = self.gather(obj, root=root)
        if values is not None:
            return SimComm._OPS[op](values)
        return None

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        if len(objs) != self.size:
            raise ValueError("alltoall needs exactly one object per rank")
        matrix = self.allgather(list(objs))
        return [matrix[src][self.rank] for src in range(self.size)]

    def split(self, color: int, key: Optional[int] = None):  # pragma: no cover
        raise NotImplementedError("nested splits of subcommunicators are not supported")


def _tree_reduce(values: Sequence[Any], op: Callable) -> Any:
    """Fixed-order pairwise reduction: deterministic regardless of thread
    arrival order (the bit-for-bit property the paper validates)."""
    vals = [(_copy_payload(v)) for v in values]
    while len(vals) > 1:
        nxt = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(op(vals[i], vals[i + 1]))
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]


class SimWorld:
    """Launches an SPMD program over ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads). Functional tests typically use 2–64.
    timeout:
        Seconds a blocking receive may wait before declaring deadlock.
    faults:
        Optional fault injector (``on_send(src, dst, tag, payload)`` /
        ``on_recv(rank, source, tag)`` protocol, e.g.
        :class:`repro.resilience.CommFaultInjector`).  ``None`` (the
        default) keeps every send/recv at one extra branch.
    n_spares:
        Pre-allocated idle ranks (``RecoveryPolicy.spare``).  Spares do
        not run the program; :meth:`promote_spares` fills dead slots with
        them so the decomposition — and therefore the continuation — is
        unchanged relative to a fault-free twin.
    """

    def __init__(
        self,
        n_ranks: int,
        timeout: float = 30.0,
        faults: Any = None,
        n_spares: int = 0,
        parent_ranks: Optional[Sequence[int]] = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if n_spares < 0:
            raise ValueError("n_spares must be >= 0")
        self.n_ranks = n_ranks
        self.n_spares = n_spares
        # Identity of each slot in the *original* world's numbering: after
        # shrink/promote the dense ranks 0..n-1 map back to these ids, so
        # per-rank artifacts (checkpoint subfiles, fault-plan entries)
        # remain addressable across repairs.
        self.parent_ranks: Tuple[int, ...] = (
            tuple(parent_ranks) if parent_ranks is not None else tuple(range(n_ranks))
        )
        if len(self.parent_ranks) != n_ranks:
            raise ValueError("parent_ranks must have one entry per rank")
        self._spare_ids: Tuple[int, ...] = tuple(
            range(max(self.parent_ranks, default=-1) + 1,
                  max(self.parent_ranks, default=-1) + 1 + n_spares)
        )
        self._timeout = timeout
        self._faults = faults
        self._state: Optional[_WorldState] = None

    @property
    def ledger(self) -> TrafficLedger:
        if self._state is None:
            raise RuntimeError("world has not run yet")
        return self._state.ledger

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; return results.

        Exceptions on any rank are re-raised in the caller (first failing
        rank wins), after all threads have been joined.
        """
        state = _WorldState(self.n_ranks, self._timeout, faults=self._faults)
        self._state = state
        results: List[Any] = [None] * self.n_ranks
        errors: List[Tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = SimComm(state, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                with errors_lock:
                    errors.append((rank, exc))
                state.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simrank-{r}", daemon=True)
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            errors.sort(key=lambda e: e[0])
            # Prefer the root cause over secondary errors: a killed rank
            # (RankFailure) makes its peers time out and/or break barriers,
            # so those must not mask the failure that caused them.
            killed = [e for e in errors if isinstance(e[1], RankFailure)]
            primary = killed or [
                e for e in errors
                if not isinstance(e[1], (threading.BrokenBarrierError, TimeoutError))
            ]
            rank, exc = (primary or errors)[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results

    # -- elastic (ULFM-style) runs --------------------------------------

    def run_elastic(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> ElasticOutcome:
        """Run ``fn`` like :meth:`run`, but survive rank deaths.

        A :class:`RankFailure` on any rank revokes the world (the
        ``MPI_Comm_revoke`` analogue): the collective barrier is aborted
        and blocked receivers are woken, so survivors raise
        :class:`CommRevokedError` promptly instead of timing out one by
        one.  After every thread has been joined — the join is the
        agreement point, playing the role of ``MPIX_Comm_agree`` in this
        threaded runtime — the outcome classifies each rank as completed,
        dead, or interrupted.  Exceptions unrelated to the failure are
        re-raised exactly as :meth:`run` would.
        """
        state = _WorldState(self.n_ranks, self._timeout, faults=self._faults)
        self._state = state
        results: List[Any] = [None] * self.n_ranks
        dead: List[int] = []
        interrupted: List[int] = []
        errors: List[Tuple[int, BaseException]] = []
        lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = SimComm(state, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except RankFailure:
                with lock:
                    dead.append(rank)
                state.revoke(rank)
            except (CommRevokedError, CommTimeoutError, threading.BrokenBarrierError) as exc:
                # Collateral damage of a death — but only if a death was in
                # fact recorded by the time we classify (post-join below).
                with lock:
                    interrupted.append(rank)
                    errors.append((rank, exc))
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                with lock:
                    errors.append((rank, exc))
                state.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simrank-{r}", daemon=True)
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if dead:
            # Agreement reached: deaths explain the interruptions; any
            # remaining error is a genuine (unrelated) program failure.
            real = [
                e for e in errors
                if e[0] not in interrupted
            ]
            if real:
                real.sort(key=lambda e: e[0])
                rank, exc = real[0]
                raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
            return ElasticOutcome(
                results=results,
                dead=tuple(sorted(dead)),
                interrupted=tuple(sorted(interrupted)),
            )
        if errors:
            errors.sort(key=lambda e: e[0])
            primary = [
                e for e in errors
                if not isinstance(e[1], (threading.BrokenBarrierError, TimeoutError))
            ]
            rank, exc = (primary or errors)[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return ElasticOutcome(results=results, dead=(), interrupted=())

    def shrink(self, dead: Sequence[int], faults: Any = None) -> "SimWorld":
        """Repaired world with the dead ranks removed and survivors densely
        renumbered in ascending order (the ``MPIX_Comm_shrink`` analogue).

        ``parent_ranks`` of the new world maps each new rank back to its
        identity in the original world, so per-rank checkpoint subfiles
        stay addressable.  ``faults`` optionally installs a new injector
        (the old one's kill entries have already fired).
        """
        dead_set = set(dead)
        if not dead_set:
            raise ValueError("shrink requires at least one dead rank")
        if not dead_set <= set(range(self.n_ranks)):
            raise ValueError(f"dead ranks {sorted(dead_set)} out of range 0..{self.n_ranks - 1}")
        survivors = [r for r in range(self.n_ranks) if r not in dead_set]
        if not survivors:
            raise ValueError("cannot shrink: no survivors")
        new = SimWorld(
            len(survivors),
            timeout=self._timeout,
            faults=faults,
            n_spares=self.n_spares,
            parent_ranks=[self.parent_ranks[r] for r in survivors],
        )
        new._spare_ids = self._spare_ids
        return new

    def promote_spares(self, dead: Sequence[int], faults: Any = None) -> "SimWorld":
        """Repaired world of the *same size*: each dead slot is filled by a
        pre-allocated spare rank, so the decomposition (and therefore the
        continuation) is unchanged relative to a fault-free twin.
        """
        dead_sorted = sorted(set(dead))
        if not dead_sorted:
            raise ValueError("promote_spares requires at least one dead rank")
        if len(dead_sorted) > len(self._spare_ids):
            raise ValueError(
                f"{len(dead_sorted)} dead rank(s) but only "
                f"{len(self._spare_ids)} spare(s) pre-allocated"
            )
        parents = list(self.parent_ranks)
        pool = list(self._spare_ids)
        for r in dead_sorted:
            parents[r] = pool.pop(0)
        new = SimWorld(
            self.n_ranks,
            timeout=self._timeout,
            faults=faults,
            n_spares=len(pool),
            parent_ranks=parents,
        )
        new._spare_ids = tuple(pool)
        return new
