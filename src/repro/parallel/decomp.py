"""Domain decompositions for structured and unstructured grids.

Provides the block decompositions used by the ocean/ice components (2-D
tripolar grid), the cell partitioning used by the atmosphere (unstructured
icosahedral grid), and owner-lookup utilities the coupler's GSMap builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "block_ranges",
    "Block1D",
    "Block2D",
    "factor_2d",
    "partition_cells_contiguous",
    "partition_cells_space_filling",
    "reassign_dead_ranks",
    "shrink_owners",
]


def block_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal blocks.

    The first ``n % parts`` blocks get one extra element — the standard
    MPI block distribution. Empty blocks are allowed when ``parts > n``.
    """
    if n < 0 or parts < 1:
        raise ValueError("need n >= 0 and parts >= 1")
    base, extra = divmod(n, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class Block1D:
    """One rank's contiguous slice of a 1-D index space."""

    n_global: int
    n_ranks: int
    rank: int

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.n_ranks:
            raise ValueError("rank out of range")

    @property
    def range(self) -> Tuple[int, int]:
        return block_ranges(self.n_global, self.n_ranks)[self.rank]

    @property
    def start(self) -> int:
        return self.range[0]

    @property
    def stop(self) -> int:
        return self.range[1]

    @property
    def size(self) -> int:
        s, e = self.range
        return e - s

    def owner(self, global_index: int) -> int:
        """Rank owning ``global_index`` (O(1) closed form)."""
        if not 0 <= global_index < self.n_global:
            raise IndexError(global_index)
        base, extra = divmod(self.n_global, self.n_ranks)
        cutover = extra * (base + 1)
        if global_index < cutover:
            return global_index // (base + 1)
        if base == 0:
            raise IndexError(global_index)
        return extra + (global_index - cutover) // base


def factor_2d(n_ranks: int, aspect: float = 1.0) -> Tuple[int, int]:
    """Factor ``n_ranks`` into (px, py) with px/py nearest ``aspect``.

    Used to shape the 2-D process grid for the tripolar ocean decomposition:
    an elongated domain (nlon ≈ 1.6 × nlat) wants px > py.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    best = (n_ranks, 1)
    best_err = float("inf")
    for py in range(1, int(math.isqrt(n_ranks)) + 1):
        if n_ranks % py:
            continue
        px = n_ranks // py
        for cand in ((px, py), (py, px)):
            err = abs(math.log(cand[0] / cand[1]) - math.log(aspect))
            if err < best_err:
                best_err = err
                best = cand
    return best


@dataclass(frozen=True)
class Block2D:
    """One rank's rectangular block of an (ny, nx) structured grid.

    Ranks are laid out row-major on a (py, px) process grid; ``rank =
    iy * px + ix``.
    """

    ny: int
    nx: int
    py: int
    px: int
    rank: int

    def __post_init__(self) -> None:
        if self.py * self.px <= self.rank or self.rank < 0:
            raise ValueError("rank out of range for process grid")

    @property
    def coords(self) -> Tuple[int, int]:
        return divmod(self.rank, self.px)

    @property
    def y_range(self) -> Tuple[int, int]:
        iy, _ = self.coords
        return block_ranges(self.ny, self.py)[iy]

    @property
    def x_range(self) -> Tuple[int, int]:
        _, ix = self.coords
        return block_ranges(self.nx, self.px)[ix]

    @property
    def shape(self) -> Tuple[int, int]:
        y0, y1 = self.y_range
        x0, x1 = self.x_range
        return (y1 - y0, x1 - x0)

    def neighbor(self, dy: int, dx: int, periodic_x: bool = True) -> int | None:
        """Rank of the (dy, dx) neighbor block, or None off the grid.

        X is periodic by default (longitude wrap on the tripolar grid);
        Y is never periodic (poles handled by the tripolar fold).
        """
        iy, ix = self.coords
        ny_, nx_ = iy + dy, ix + dx
        if not 0 <= ny_ < self.py:
            return None
        if periodic_x:
            nx_ %= self.px
        elif not 0 <= nx_ < self.px:
            return None
        return ny_ * self.px + nx_

    def global_slices(self) -> Tuple[slice, slice]:
        y0, y1 = self.y_range
        x0, x1 = self.x_range
        return slice(y0, y1), slice(x0, x1)

    @staticmethod
    def owner_of(ny: int, nx: int, py: int, px: int, j: int, i: int) -> int:
        """Rank owning global point (j, i)."""
        jy = Block1D(ny, py, 0).owner(j)
        ix = Block1D(nx, px, 0).owner(i)
        return jy * px + ix


def partition_cells_contiguous(n_cells: int, n_ranks: int) -> np.ndarray:
    """Owner array for a contiguous block partition of unstructured cells."""
    owners = np.empty(n_cells, dtype=np.int32)
    for rank, (s, e) in enumerate(block_ranges(n_cells, n_ranks)):
        owners[s:e] = rank
    return owners


def partition_cells_space_filling(
    lon: Sequence[float], lat: Sequence[float], n_ranks: int
) -> np.ndarray:
    """Locality-preserving partition of unstructured cells.

    Sorts cells along a Morton-like curve over (lon, lat) and cuts the curve
    into equal pieces — the cheap stand-in for the SFC partitioners real
    dycores use, giving compact subdomains and hence low halo/interior
    ratios (the quantity the machine model's communication term depends on).
    """
    lon = np.asarray(lon, dtype=np.float64)
    lat = np.asarray(lat, dtype=np.float64)
    if lon.shape != lat.shape:
        raise ValueError("lon/lat shape mismatch")
    n = lon.size
    # Quantize to 16-bit per axis and interleave bits (Morton order).
    qx = np.clip(((lon % (2 * np.pi)) / (2 * np.pi) * 65535).astype(np.uint32), 0, 65535)
    qy = np.clip(((lat + np.pi / 2) / np.pi * 65535).astype(np.uint32), 0, 65535)

    def _spread(v: np.ndarray) -> np.ndarray:
        v = v.astype(np.uint64)
        v = (v | (v << 16)) & np.uint64(0x0000FFFF0000FFFF)
        v = (v | (v << 8)) & np.uint64(0x00FF00FF00FF00FF)
        v = (v | (v << 4)) & np.uint64(0x0F0F0F0F0F0F0F0F)
        v = (v | (v << 2)) & np.uint64(0x3333333333333333)
        v = (v | (v << 1)) & np.uint64(0x5555555555555555)
        return v

    morton = _spread(qx) | (_spread(qy) << np.uint64(1))
    order = np.argsort(morton, kind="stable")
    owners = np.empty(n, dtype=np.int32)
    for rank, (s, e) in enumerate(block_ranges(n, n_ranks)):
        owners[order[s:e]] = rank
    return owners


def reassign_dead_ranks(owners: np.ndarray, dead: Sequence[int]) -> np.ndarray:
    """Reassign every cell owned by a dead rank to its nearest surviving
    owner along the index order.

    For the (contiguous or SFC) block partitions above this preserves
    block contiguity of each survivor's cell set: a dead rank's block is
    split between the survivors adjacent to it in index order, each half
    absorbed by the nearer one.  Owners keep their *original* rank
    numbers; compose with :func:`shrink_owners` to densify.
    """
    owners = np.asarray(owners)
    dead_set = set(int(d) for d in dead)
    survivors = sorted(set(int(o) for o in owners.tolist()) - dead_set)
    if not survivors:
        raise ValueError("no surviving owners to absorb the dead ranks' cells")
    out = owners.copy()
    is_dead = np.isin(out, list(dead_set))
    if not is_dead.any():
        return out
    idx = np.nonzero(is_dead)[0]
    alive_idx = np.nonzero(~is_dead)[0]
    if alive_idx.size == 0:
        raise ValueError("every cell is owned by a dead rank")
    # For each orphaned cell, adopt the owner of the nearest alive cell in
    # index order (ties go left, keeping the split deterministic).
    pos = np.searchsorted(alive_idx, idx)
    left = np.clip(pos - 1, 0, alive_idx.size - 1)
    right = np.clip(pos, 0, alive_idx.size - 1)
    dist_left = np.abs(idx - alive_idx[left])
    dist_right = np.abs(alive_idx[right] - idx)
    choose_left = dist_left <= dist_right
    adopted = np.where(choose_left, alive_idx[left], alive_idx[right])
    out[idx] = out[adopted]
    return out


def shrink_owners(
    owners: np.ndarray, dead: Sequence[int], n_ranks: int | None = None
) -> Tuple[np.ndarray, dict]:
    """Reassign dead ranks' cells and densify the surviving rank numbers.

    Returns ``(new_owners, old_to_new)`` where survivors are renumbered
    0..n_survivors-1 in ascending order of their old rank — the same
    ordering :meth:`repro.parallel.SimWorld.shrink` uses, so the owner
    array and the repaired world agree on who is who.  Pass ``n_ranks``
    when some survivors may own zero cells (they still occupy a slot in
    the repaired world and must be counted in the renumbering).
    """
    owners = np.asarray(owners)
    reassigned = reassign_dead_ranks(owners, dead)
    dead_set = set(int(d) for d in dead)
    if n_ranks is not None:
        old_ranks = sorted(set(range(n_ranks)) - dead_set)
    else:
        old_ranks = sorted(set(int(o) for o in owners.tolist()) - dead_set)
    old_to_new = {old: new for new, old in enumerate(old_ranks)}
    new_owners = np.empty_like(reassigned)
    for old, new in old_to_new.items():
        new_owners[reassigned == old] = new
    return new_owners, old_to_new
