"""Simulated MPI runtime, decompositions, halo exchange, topology tools."""

from .comm import (
    CollectiveCost,
    CommRevokedError,
    CommTimeoutError,
    CommTransientError,
    ElasticOutcome,
    RankFailure,
    Request,
    SimComm,
    SimWorld,
    TrafficLedger,
)
from .decomp import (
    Block1D,
    Block2D,
    block_ranges,
    factor_2d,
    partition_cells_contiguous,
    partition_cells_space_filling,
    reassign_dead_ranks,
    shrink_owners,
)
from .halo import GraphHalo, StructuredHalo, local_with_halo
from .topology import (
    Placement,
    comm_graph_from_matrix,
    greedy_locality_mapping,
    traffic_split,
)

__all__ = [
    "SimWorld",
    "SimComm",
    "Request",
    "TrafficLedger",
    "CollectiveCost",
    "CommTransientError",
    "CommTimeoutError",
    "CommRevokedError",
    "RankFailure",
    "ElasticOutcome",
    "block_ranges",
    "reassign_dead_ranks",
    "shrink_owners",
    "Block1D",
    "Block2D",
    "factor_2d",
    "partition_cells_contiguous",
    "partition_cells_space_filling",
    "StructuredHalo",
    "GraphHalo",
    "local_with_halo",
    "Placement",
    "comm_graph_from_matrix",
    "greedy_locality_mapping",
    "traffic_split",
]
