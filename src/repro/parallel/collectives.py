"""Analytic cost models for MPI collectives and point-to-point patterns.

The machine model needs to price communication for rank counts far beyond
what the threaded runtime can execute (tens of millions).  These are the
standard LogGP-style algorithm models: every function returns
``(n_messages_on_critical_path, bytes_on_critical_path)`` so that time =
``msgs * latency + bytes / bandwidth`` is a critical-path estimate, not an
aggregate.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = [
    "cost_p2p",
    "cost_halo_exchange",
    "cost_allreduce",
    "cost_bcast",
    "cost_alltoall",
    "cost_alltoall_sparse",
    "cost_gather",
]


def _ceil_log2(p: int) -> int:
    return max(1, math.ceil(math.log2(max(2, p))))


def cost_p2p(nbytes: int) -> Tuple[int, int]:
    """One message of ``nbytes``."""
    return 1, nbytes


def cost_halo_exchange(
    nbytes_per_neighbor: int, n_neighbors: int
) -> Tuple[int, int]:
    """Non-blocking halo exchange: neighbor messages overlap, so the
    critical path is one latency per posted round plus the serialized
    injection of all outgoing bytes through one NIC."""
    if n_neighbors <= 0:
        return 0, 0
    return n_neighbors, nbytes_per_neighbor * n_neighbors


def cost_allreduce(nbytes: int, p: int) -> Tuple[int, int]:
    """Recursive doubling: log2(P) rounds of full-size messages (small
    payloads — the relevant regime for dot products and CFL reductions)."""
    if p <= 1:
        return 0, 0
    rounds = _ceil_log2(p)
    return rounds, nbytes * rounds


def cost_bcast(nbytes: int, p: int) -> Tuple[int, int]:
    """Binomial tree broadcast."""
    if p <= 1:
        return 0, 0
    rounds = _ceil_log2(p)
    return rounds, nbytes * rounds


def cost_gather(nbytes_per_rank: int, p: int) -> Tuple[int, int]:
    """Binomial gather: log2(P) rounds; root ends up receiving ~P·n bytes."""
    if p <= 1:
        return 0, 0
    rounds = _ceil_log2(p)
    return rounds, nbytes_per_rank * (p - 1)


def cost_alltoall(nbytes_per_pair: int, p: int) -> Tuple[int, int]:
    """Dense pairwise-exchange all-to-all: P-1 rounds, each moving one
    pair-message per rank.  This is the *original* CPL7 rearranger pattern
    the paper calls inefficient."""
    if p <= 1:
        return 0, 0
    return p - 1, nbytes_per_pair * (p - 1)


def cost_alltoall_sparse(
    nbytes_per_pair: int, n_real_partners: int, p: int
) -> Tuple[int, int]:
    """Non-blocking point-to-point rearranger (the paper's replacement):
    only the ranks that actually share grid overlap communicate, and the
    messages overlap, so the critical path carries ``n_real_partners``
    latencies instead of ``p - 1``."""
    if n_real_partners <= 0 or p <= 1:
        return 0, 0
    return n_real_partners, nbytes_per_pair * n_real_partners
