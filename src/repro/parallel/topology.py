"""Communication-topology analysis and rank remapping.

The paper's §5.2.2 rebuilds the ocean component's communication topology
after removing 3-D non-ocean points ("an MPI rank mapping ensures correct
data access, and a new communication topology optimizes boundary
exchange").  This module provides the graph machinery for that:

* build a weighted communication graph from a traffic matrix or from halo
  exchange lists,
* estimate congestion of a placement on a fat-tree machine (super-node
  locality, oversubscription penalty),
* greedily remap ranks onto nodes/super-nodes to keep heavy edges local —
  the optimization the paper applies when the compressed ocean ranks no
  longer match the original grid layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

__all__ = [
    "comm_graph_from_matrix",
    "Placement",
    "traffic_split",
    "greedy_locality_mapping",
]


def comm_graph_from_matrix(matrix: np.ndarray) -> nx.Graph:
    """Undirected weighted communication graph from a (P, P) byte matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("traffic matrix must be square")
    g = nx.Graph()
    p = matrix.shape[0]
    g.add_nodes_from(range(p))
    sym = matrix + matrix.T
    src, dst = np.nonzero(np.triu(sym, k=1))
    for s, d in zip(src.tolist(), dst.tolist()):
        g.add_edge(s, d, bytes=int(sym[s, d]))
    return g


@dataclass(frozen=True)
class Placement:
    """Assignment of ranks to a node/super-node hierarchy.

    ``node_of[r]`` is the node index of rank r; nodes are grouped into
    super-nodes of ``nodes_per_supernode`` consecutive node indices (the
    OceanLight's 256-node leaf-switch groups).
    """

    node_of: np.ndarray
    nodes_per_supernode: int = 256

    def supernode_of(self, rank: int) -> int:
        return int(self.node_of[rank]) // self.nodes_per_supernode

    @staticmethod
    def block(n_ranks: int, ranks_per_node: int, nodes_per_supernode: int = 256) -> "Placement":
        """Default placement: consecutive ranks share a node."""
        node_of = np.arange(n_ranks) // ranks_per_node
        return Placement(node_of=node_of, nodes_per_supernode=nodes_per_supernode)


def traffic_split(graph: nx.Graph, placement: Placement) -> Dict[str, int]:
    """Split communication volume by locality level.

    Returns bytes crossing each level: ``intra_node`` (free/memory speed),
    ``intra_supernode`` (one leaf switch), and ``inter_supernode`` (the
    16:3-oversubscribed upper fat-tree stages — the expensive part).
    """
    out = {"intra_node": 0, "intra_supernode": 0, "inter_supernode": 0}
    for u, v, data in graph.edges(data=True):
        nbytes = data.get("bytes", 0)
        if placement.node_of[u] == placement.node_of[v]:
            out["intra_node"] += nbytes
        elif placement.supernode_of(u) == placement.supernode_of(v):
            out["intra_supernode"] += nbytes
        else:
            out["inter_supernode"] += nbytes
    return out


def greedy_locality_mapping(
    graph: nx.Graph,
    n_nodes: int,
    ranks_per_node: int,
    nodes_per_supernode: int = 256,
    seed_rank: Optional[int] = None,
) -> Placement:
    """Greedy BFS-style packing of ranks onto nodes to localize heavy edges.

    Starting from the heaviest-degree rank, repeatedly fills each node with
    the unplaced rank that has the largest total edge weight into the ranks
    already placed on that node (falling back to the current super-node,
    then to any rank).  This is the classic greedy graph-mapping heuristic;
    it is what "an MPI rank mapping ensures correct data access" requires
    once compression destroys the original block layout.
    """
    p = graph.number_of_nodes()
    if n_nodes * ranks_per_node < p:
        raise ValueError("not enough node slots for all ranks")
    weight = {
        r: sum(d.get("bytes", 0) for _, _, d in graph.edges(r, data=True))
        for r in graph.nodes
    }
    if seed_rank is None:
        seed_rank = max(weight, key=lambda r: (weight[r], -r))
    unplaced = set(graph.nodes)
    node_of = np.full(p, -1, dtype=np.int64)

    def affinity(rank: int, members: Sequence[int]) -> int:
        return sum(
            graph.edges[rank, m].get("bytes", 0) for m in members if graph.has_edge(rank, m)
        )

    next_seed = seed_rank
    for node in range(n_nodes):
        if not unplaced:
            break
        members: List[int] = []
        first = next_seed if next_seed in unplaced else max(unplaced, key=lambda r: (weight[r], -r))
        members.append(first)
        unplaced.discard(first)
        node_of[first] = node
        while len(members) < ranks_per_node and unplaced:
            best = max(unplaced, key=lambda r: (affinity(r, members), weight[r], -r))
            members.append(best)
            unplaced.discard(best)
            node_of[best] = node
        # Seed the next node with the unplaced rank most attached to this one.
        if unplaced:
            next_seed = max(unplaced, key=lambda r: (affinity(r, members), weight[r], -r))
    if unplaced:
        raise RuntimeError("internal error: ranks left unplaced")
    return Placement(node_of=node_of, nodes_per_supernode=nodes_per_supernode)
