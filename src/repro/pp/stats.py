"""Bridge from pp kernel statistics into the observability layer.

``parallel_for``/``parallel_reduce`` accept a :class:`KernelStats`
accumulator but know nothing about :mod:`repro.obs`.  This module closes
the gap without coupling the layers: :class:`ObsKernelStats` is a
drop-in ``KernelStats`` whose ``record`` also publishes a launch counter
and an iteration histogram to any obs-like handle (anything with
``counter``/``gauge``/``histogram`` methods — :class:`repro.obs.Obs`
satisfies this by construction), and :class:`KernelMetrics` is the
per-context pool handing one named accumulator to each kernel so a
``--trace`` run shows kernel-level activity alongside the spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from .execspace import KernelStats
from .kernels import TileProfile

__all__ = ["ObsKernelStats", "KernelMetrics", "publish_tile_profile"]


@dataclass
class ObsKernelStats(KernelStats):
    """KernelStats that mirrors each launch into an obs metrics registry.

    Metric names follow ``pp.<kernel>.launches`` (counter),
    ``pp.<kernel>.iterations`` (histogram of per-launch iteration
    counts) and ``pp.<kernel>.seconds`` (counter of measured wall
    seconds — the signal :mod:`repro.machine.calibrate` fits against).
    With ``obs=None`` this is exactly a ``KernelStats``.
    """

    kernel: str = "kernel"
    obs: Optional[Any] = None

    def record(self, n: int, seconds: float = 0.0) -> None:
        super().record(n, seconds)
        if self.obs is not None:
            self.obs.counter(f"pp.{self.kernel}.launches").inc()
            self.obs.histogram(f"pp.{self.kernel}.iterations").observe(float(n))
            if seconds > 0.0:
                self.obs.counter(f"pp.{self.kernel}.seconds").inc(seconds)


class KernelMetrics:
    """Named pool of per-kernel :class:`ObsKernelStats` accumulators.

    One instance lives on the shared ``ComponentContext``; each component
    kernel wrapper asks for its accumulator by name, so every launch in a
    coupled run lands in one registry regardless of which component
    issued it.
    """

    def __init__(self, obs: Optional[Any] = None) -> None:
        self.obs = obs
        self._stats: Dict[str, ObsKernelStats] = {}

    def stats(self, kernel: str) -> ObsKernelStats:
        acc = self._stats.get(kernel)
        if acc is None:
            acc = ObsKernelStats(kernel=kernel, obs=self.obs)
            self._stats[kernel] = acc
        return acc

    def summary(self) -> Dict[str, Dict[str, float]]:
        """{kernel: {launches, iterations, seconds}} for every accumulator."""
        return {
            name: {
                "launches": acc.launches,
                "iterations": acc.iterations,
                "seconds": acc.seconds,
            }
            for name, acc in sorted(self._stats.items())
        }

    def publish_totals(self) -> None:
        """Snapshot cumulative totals as gauges (call once at finalize)."""
        if self.obs is None:
            return
        for name, acc in self._stats.items():
            self.obs.gauge(f"pp.{name}.iterations_total").set(float(acc.iterations))


def publish_tile_profile(obs: Any, kernel: str, profile: TileProfile) -> None:
    """Record an MDRange tiling profile as gauges on ``obs``.

    Publishes ``pp.tile.<kernel>.{tiles,iterations,imbalance}`` so a
    trace shows how a tiled launch decomposed, not just that it ran.
    """
    if obs is None:
        return
    obs.gauge(f"pp.tile.{kernel}.tiles").set(float(profile.n_tiles))
    obs.gauge(f"pp.tile.{kernel}.iterations").set(float(profile.total_iterations))
    obs.gauge(f"pp.tile.{kernel}.imbalance").set(float(profile.imbalance))
