"""SWGOMP: directive-style loop offload for the Fortran-side components.

The paper's atmosphere/ice/land components are made portable with OpenMP
``!$omp target`` directives, compiled for Sunway CPEs by the SWGOMP
compiler plugin ("OpenMP-driven automatic loop space mapping on Sunway's
computing processing elements").  This module reproduces the *programming
model*: a decorator that declares a function to be a conflict-free loop
over its first argument's leading extent, maps the loop space onto a target
execution space in static/chunked schedules, and records offload
statistics.

Usage::

    @target(schedule="static")
    def saturate(q, qs):          # loop body, vectorized over rows
        np.minimum(q, qs, out=q)

    saturate.offload(space, q, qs)   # runs chunk-wise on `space`
    saturate(q, qs)                  # plain call still works (host path)

The decorated function must be **conflict-free**: chunk c only writes rows
of its outputs indexed by chunk c (the same contract ``!$omp target`` teams
require).  A debug validator (``validate=True``) checks this by comparing
the offloaded result against a serial execution.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .execspace import ExecutionSpace, Serial

__all__ = ["target", "OffloadStats", "TargetLoop"]


@dataclass
class OffloadStats:
    """Accumulated offload accounting for one decorated loop."""

    offloads: int = 0
    rows: int = 0
    chunks: int = 0

    def record(self, n_rows: int, n_chunks: int) -> None:
        self.offloads += 1
        self.rows += n_rows
        self.chunks += n_chunks


class TargetLoop:
    """A loop-shaped function that can execute on any execution space."""

    def __init__(self, fn: Callable, schedule: str, chunk: Optional[int]) -> None:
        if schedule not in ("static", "chunked"):
            raise ValueError("schedule must be 'static' or 'chunked'")
        if schedule == "chunked" and (chunk is None or chunk < 1):
            raise ValueError("chunked schedule requires a positive chunk size")
        self._fn = fn
        self.schedule = schedule
        self.chunk = chunk
        self.stats = OffloadStats()
        functools.update_wrapper(self, fn)

    def __call__(self, *arrays: np.ndarray, **kwargs):
        """Plain host execution (the un-offloaded Fortran path)."""
        return self._fn(*arrays, **kwargs)

    def _chunks(self, space: ExecutionSpace, n: int) -> List[slice]:
        # Chunks are *slices* (views), so in-place writes by the loop body
        # land in the caller's arrays — fancy-index chunks would copy.
        if self.schedule == "static":
            return [slice(int(ix[0]), int(ix[-1]) + 1) for ix in space.chunks(n)]
        assert self.chunk is not None
        return [slice(s, min(s + self.chunk, n)) for s in range(0, n, self.chunk)]

    def offload(self, space: ExecutionSpace, *arrays: np.ndarray, validate: bool = False, **kwargs) -> None:
        """Run the loop chunk-wise on ``space`` by row-slicing every array.

        All positional arguments must share the same leading extent (the
        loop dimension).  With ``validate=True`` the result is checked
        against a serial reference execution — the debug mode used when
        porting a loop whose conflict-freedom is uncertain.
        """
        if not arrays:
            raise ValueError("offload needs at least one array argument")
        n = arrays[0].shape[0]
        for a in arrays[1:]:
            if a.shape[0] != n:
                raise ValueError(
                    "all offloaded arrays must share the loop (leading) extent"
                )
        reference = None
        if validate:
            reference = [a.copy() for a in arrays]
            self._fn(*reference, **kwargs)

        chunks = self._chunks(space, n)
        for idx in chunks:
            self._fn(*(a[idx] for a in arrays), **kwargs)
        self.stats.record(n, len(chunks))

        if reference is not None:
            for got, want in zip(arrays, reference):
                if not np.array_equal(got, want):
                    raise RuntimeError(
                        f"loop {self.__name__!r} is not conflict-free: offloaded "
                        "result differs from the serial reference"
                    )


def target(schedule: str = "static", chunk: Optional[int] = None) -> Callable[[Callable], TargetLoop]:
    """Decorator marking a function as an ``!$omp target``-style loop.

    Parameters
    ----------
    schedule:
        ``"static"`` — one contiguous chunk per lane (SWGOMP's default
        mapping); ``"chunked"`` — fixed ``chunk`` rows per dispatch (used
        when per-row work is very uneven).
    """

    def deco(fn: Callable) -> TargetLoop:
        return TargetLoop(fn, schedule, chunk)

    return deco
