"""Kokkos-style Views: multi-dimensional arrays with explicit layout and
memory space.

A ``View`` wraps a numpy array and tags it with

* a **layout** — ``LayoutRight`` (C, rows contiguous: the CPU/CPE-friendly
  layout) or ``LayoutLeft`` (Fortran, columns contiguous: the
  coalesced-access GPU layout), and
* a **memory space** — where the data "lives" in the simulated machine
  (host DDR, CPE local device memory, GPU HBM).

``create_mirror_view`` and ``deep_copy`` reproduce the Kokkos idioms the
LICOMK++ port relies on; the byte volume of every host<->device copy is
recorded so the machine model can charge PCIe/DMA time for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Layout",
    "MemorySpace",
    "View",
    "create_mirror_view",
    "deep_copy",
    "TransferLedger",
]


class Layout(enum.Enum):
    """Index-to-memory mapping order."""

    RIGHT = "LayoutRight"  # C order: last index fastest (CPU caches)
    LEFT = "LayoutLeft"    # Fortran order: first index fastest (GPU coalescing)


class MemorySpace(enum.Enum):
    """Where a View's allocation lives in the simulated machine."""

    HOST = "HostSpace"         # node DDR (MPE-visible)
    CPE_LDM = "CPELocalSpace"  # Sunway CPE local device memory (256 KB scratch)
    DEVICE = "DeviceSpace"     # GPU HBM (ORISE accelerators)


class TransferLedger:
    """Records host<->device copy volume for the machine cost model."""

    def __init__(self) -> None:
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.copies = 0

    def record(self, src_space: MemorySpace, dst_space: MemorySpace, nbytes: int) -> None:
        self.copies += 1
        if src_space is MemorySpace.HOST and dst_space is not MemorySpace.HOST:
            self.h2d_bytes += nbytes
        elif src_space is not MemorySpace.HOST and dst_space is MemorySpace.HOST:
            self.d2h_bytes += nbytes

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes


#: Process-wide default transfer ledger (tests may install their own).
DEFAULT_TRANSFER_LEDGER = TransferLedger()


@dataclass
class View:
    """A labeled, layout- and space-tagged array (Kokkos ``View``).

    Construct with :meth:`View.alloc` or wrap an existing array with
    :meth:`View.of`.  The underlying data is always available as ``.data``
    (a numpy array whose memory order matches the layout tag).
    """

    label: str
    data: np.ndarray
    layout: Layout
    space: MemorySpace

    @staticmethod
    def alloc(
        label: str,
        shape: Sequence[int],
        dtype=np.float64,
        layout: Layout = Layout.RIGHT,
        space: MemorySpace = MemorySpace.HOST,
    ) -> "View":
        order = "C" if layout is Layout.RIGHT else "F"
        return View(label, np.zeros(tuple(shape), dtype=dtype, order=order), layout, space)

    @staticmethod
    def of(
        label: str,
        array: np.ndarray,
        space: MemorySpace = MemorySpace.HOST,
    ) -> "View":
        layout = Layout.LEFT if array.flags.f_contiguous and not array.flags.c_contiguous else Layout.RIGHT
        return View(label, array, layout, space)

    # -- ergonomics -------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value):
        self.data[idx] = value

    def fill(self, value) -> None:
        self.data.fill(value)

    def relayout(self, layout: Layout) -> "View":
        """Copy into the requested layout (no-op if already there)."""
        if layout is self.layout:
            return self
        order = "C" if layout is Layout.RIGHT else "F"
        return View(self.label, np.asarray(self.data, order=order).copy(order=order), layout, self.space)


def create_mirror_view(view: View, space: MemorySpace) -> View:
    """A View with the same extents in another memory space.

    Like Kokkos, if the source already lives in the target space the source
    itself is returned (zero-copy); otherwise a fresh allocation is made
    (contents NOT copied — pair with :func:`deep_copy`).
    """
    if view.space is space:
        return view
    order = "C" if view.layout is Layout.RIGHT else "F"
    mirror = View(
        f"{view.label}::mirror",
        np.zeros(view.shape, dtype=view.dtype, order=order),
        view.layout,
        space,
    )
    return mirror


def deep_copy(
    dst: View,
    src: View,
    ledger: Optional[TransferLedger] = None,
) -> None:
    """Copy ``src`` into ``dst`` (possibly across spaces and layouts).

    Space-crossing copies are recorded in the transfer ledger, which the
    ORISE machine model converts into PCIe/DMA time (16 GB/s per the paper's
    hardware description).
    """
    if dst.shape != src.shape:
        raise ValueError(f"shape mismatch: {dst.shape} vs {src.shape}")
    dst.data[...] = src.data
    if dst.space is not src.space:
        (ledger or DEFAULT_TRANSFER_LEDGER).record(src.space, dst.space, src.nbytes)
