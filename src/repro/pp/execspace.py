"""Execution spaces: where (and in what shape) a parallel kernel runs.

The paper's portability claim is that the *same* kernels execute on a
Sunway CG (1 MPE + 64 CPEs), on an ORISE GPU, or serially on a host CPU.
We reproduce that contract: an :class:`ExecutionSpace` turns an iteration
range into a set of **chunks** (what a CPE, a GPU thread block, or the
single serial lane would own) and executes a vectorized functor over each
chunk.  Because the chunks partition the index space and the functor is
applied to disjoint slices, every space produces bit-identical results —
the property tested by ``tests/test_pp_kernels.py`` and claimed in §5.3.

Each space also carries the *cost parameters* the machine model uses to
price a kernel on that hardware (lanes, per-lane throughput, launch
overhead), so that "which backend is faster" is a modeled quantity, not a
hard-coded answer.

Execution is factored into four overridable hooks (``run_chunks`` /
``map_chunks`` / ``run_tiles`` / ``map_tiles``): the base class executes
every chunk or tile serially in-process, while a *real* backend — the
shared-memory :func:`repro.pp.procpool.ProcPool` — overrides them to fan
the same decomposition across host cores.  The kernel layer
(:mod:`repro.pp.kernels`) decides *what* the chunks are; the space
decides only *where* they execute, which is how the serial path stays
bitwise-identical when a parallel backend is swapped in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ExecutionSpace",
    "Serial",
    "HostThreads",
    "CPECluster",
    "GPUDevice",
    "KernelStats",
]


@dataclass
class KernelStats:
    """Per-space accumulated kernel launch statistics.

    ``seconds`` accumulates measured wall time per launch (supplied by the
    kernel layer, which times each dispatch) — the raw signal the
    measurement-calibrated machine model (:mod:`repro.machine.calibrate`)
    fits its per-kernel cost terms against.
    """

    launches: int = 0
    iterations: int = 0
    seconds: float = 0.0

    def record(self, n: int, seconds: float = 0.0) -> None:
        self.launches += 1
        self.iterations += n
        self.seconds += seconds


@dataclass(frozen=True)
class ExecutionSpace:
    """Base class: a named set of parallel lanes with cost parameters.

    Parameters
    ----------
    name:
        Human-readable space name.
    lanes:
        Number of concurrent hardware lanes (CPEs, SIMT threads, ...).
    flops_per_lane:
        Sustained FLOP/s per lane — used only by the cost model.
    launch_overhead_s:
        Fixed kernel launch cost in modeled seconds.
    """

    name: str
    lanes: int
    flops_per_lane: float
    launch_overhead_s: float

    def chunks(self, n: int) -> Iterator[np.ndarray]:
        """Partition ``range(n)`` into per-lane contiguous index chunks.

        An empty iteration space (``n == 0``) yields **no** chunks — never
        an empty chunk — so a flat ``parallel_for`` over zero iterations
        calls the functor zero times, matching the MDRange path where a
        zero extent produces zero tiles.
        """
        if n < 0:
            raise ValueError("iteration count must be >= 0")
        if n == 0:
            return
        lanes = min(self.lanes, n)
        bounds = np.linspace(0, n, lanes + 1).astype(np.int64)
        for k in range(lanes):
            lo, hi = bounds[k], bounds[k + 1]
            if hi > lo:
                yield np.arange(lo, hi, dtype=np.int64)

    # -- execution hooks (overridden by real parallel backends) ------------

    def run_chunks(self, functor: Callable, chunks: Sequence[np.ndarray]) -> None:
        """Execute ``functor(chunk)`` for every chunk (side effects only).

        The base class runs serially in-process; a real backend may fan
        the chunks across workers, provided writes land in the caller's
        arrays (see :mod:`repro.pp.procpool`).
        """
        for chunk in chunks:
            functor(chunk)

    def map_chunks(self, functor: Callable, chunks: Sequence[np.ndarray]) -> List:
        """``[functor(chunk) for chunk in chunks]``, in chunk order.

        Backends may compute the results concurrently, but the returned
        list is always ordered like ``chunks`` — the fixed-order pairwise
        reduction tree in :func:`repro.pp.kernels.parallel_reduce` relies
        on this.  Functors used with ``map_chunks`` must be pure with
        respect to their array arguments (Kokkos reducer contract).
        """
        return [functor(chunk) for chunk in chunks]

    def run_tiles(self, functor: Callable, tiles: Sequence[Tuple[np.ndarray, ...]]) -> None:
        """Execute ``functor(*tile)`` for every MDRange tile."""
        for tile in tiles:
            functor(*tile)

    def map_tiles(self, functor: Callable, tiles: Sequence[Tuple[np.ndarray, ...]]) -> List:
        """``[functor(*tile) for tile in tiles]``, in tile order."""
        return [functor(*tile) for tile in tiles]

    def modeled_time(self, flops: float, n_launches: int = 1) -> float:
        """Modeled seconds to execute ``flops`` spread over all lanes."""
        if flops < 0:
            raise ValueError("flops must be >= 0")
        return n_launches * self.launch_overhead_s + flops / (
            self.lanes * self.flops_per_lane
        )


def Serial() -> ExecutionSpace:
    """Single host lane (the MPE-only baseline in the paper's Table 2)."""
    return ExecutionSpace("Serial", lanes=1, flops_per_lane=3.2e9, launch_overhead_s=0.0)


def HostThreads(n_threads: int = 8) -> ExecutionSpace:
    """Multicore host backend (OpenMP on a commodity CPU)."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    return ExecutionSpace(
        "HostThreads", lanes=n_threads, flops_per_lane=3.2e9, launch_overhead_s=2e-6
    )


@dataclass(frozen=True)
class _CPEClusterSpace(ExecutionSpace):
    """ExecutionSpace plus the CPE local-device-memory capacity."""

    ldm_bytes: int = 256 * 1024


def CPECluster(n_cpes: int = 64, ldm_bytes: int = 256 * 1024) -> ExecutionSpace:
    """One Sunway SW26010P core group: 64 CPEs, 256 KB LDM each.

    The LDM capacity bounds the tile size :func:`repro.pp.kernels.parallel_for`
    may hand to one CPE when tiling is requested.
    """
    if n_cpes < 1:
        raise ValueError("n_cpes must be >= 1")
    return _CPEClusterSpace(
        "CPECluster",
        lanes=n_cpes,
        flops_per_lane=1.1e10,
        launch_overhead_s=5e-6,
        ldm_bytes=ldm_bytes,
    )


def GPUDevice(n_threads: int = 4096) -> ExecutionSpace:
    """One ORISE HIP accelerator (MI60-class SIMT device)."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    return ExecutionSpace(
        "GPUDevice", lanes=n_threads, flops_per_lane=1.6e9, launch_overhead_s=1e-5
    )
