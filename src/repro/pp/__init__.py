"""Performance-portability layer: Kokkos-style Views/execution spaces/
parallel dispatch, the hash-based kernel registry (Sunway TMP workaround),
and the SWGOMP directive-style loop offload."""

from .execspace import (
    CPECluster,
    ExecutionSpace,
    GPUDevice,
    HostThreads,
    KernelStats,
    Serial,
)
from .kernels import (
    BoundKernel,
    MDRangePolicy,
    TileProfile,
    parallel_for,
    parallel_reduce,
    parallel_scan,
    reduction_chunks,
)
from .backends import BACKEND_PORTFOLIO, make_backend, select_backend
from .procpool import PoolStats, ProcPool, ProcPoolRuntime, ProcPoolSpace, SharedView
from .registry import HybridDispatcher, KernelRegistry, kernel_hash
from .stats import KernelMetrics, ObsKernelStats, publish_tile_profile
from .swgomp import OffloadStats, TargetLoop, target
from .view import (
    Layout,
    MemorySpace,
    TransferLedger,
    View,
    create_mirror_view,
    deep_copy,
)

__all__ = [
    "ExecutionSpace",
    "Serial",
    "HostThreads",
    "CPECluster",
    "GPUDevice",
    "KernelStats",
    "MDRangePolicy",
    "TileProfile",
    "BoundKernel",
    "parallel_for",
    "parallel_reduce",
    "parallel_scan",
    "reduction_chunks",
    "ProcPool",
    "ProcPoolRuntime",
    "ProcPoolSpace",
    "PoolStats",
    "SharedView",
    "make_backend",
    "KernelRegistry",
    "kernel_hash",
    "HybridDispatcher",
    "select_backend",
    "BACKEND_PORTFOLIO",
    "KernelMetrics",
    "ObsKernelStats",
    "publish_tile_profile",
    "target",
    "TargetLoop",
    "OffloadStats",
    "View",
    "Layout",
    "MemorySpace",
    "TransferLedger",
    "create_mirror_view",
    "deep_copy",
]
