"""Space-polymorphic parallel dispatch: ``parallel_for`` / ``parallel_reduce``
with flat ranges and tiled multi-dimensional ranges (``MDRangePolicy``).

The functor contract is **vectorized**: a flat-range functor receives a
numpy index array (one chunk of the iteration space) and performs its work
for all of them; an MDRange functor receives one tuple of index arrays per
dimension (a tile, in ``np.ix_``-ready form).  Backends differ only in how
they cut the index space — results are bit-identical across execution
spaces because chunks are disjoint and ordered.

``parallel_reduce`` combines per-chunk partial results with a fixed-order
pairwise tree, so the reduction is deterministic for every space and lane
count (the bit-for-bit validation property of §5.1).

``MDRangePolicy`` supports the "finer-grained tile profiling" the paper
attributes to its Kokkos port: pass ``profile=True`` and per-tile
iteration counts/shapes are recorded on the returned :class:`TileProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .execspace import ExecutionSpace, KernelStats

__all__ = [
    "MDRangePolicy",
    "TileProfile",
    "parallel_for",
    "parallel_reduce",
    "parallel_scan",
]


@dataclass(frozen=True)
class MDRangePolicy:
    """A multi-dimensional iteration space with a tile shape.

    Parameters
    ----------
    extents:
        Iteration extents per dimension, e.g. ``(nz, ny, nx)``.
    tile:
        Tile shape; defaults to the full extent in every dimension but the
        first (so tiles are "pencils" along the leading dimension, the
        layout-friendly choice for LayoutRight data).
    """

    extents: Tuple[int, ...]
    tile: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.extents or any(e < 0 for e in self.extents):
            raise ValueError("extents must be a non-empty tuple of >= 0")
        if self.tile is not None:
            if len(self.tile) != len(self.extents):
                raise ValueError("tile rank must match extents rank")
            if any(t < 1 for t in self.tile):
                raise ValueError("tile sizes must be >= 1")

    @property
    def effective_tile(self) -> Tuple[int, ...]:
        if self.tile is not None:
            return self.tile
        return (1,) + tuple(max(1, e) for e in self.extents[1:])

    def tiles(self) -> List[Tuple[np.ndarray, ...]]:
        """All tiles, each a tuple of per-dimension index arrays."""
        tile = self.effective_tile
        per_dim: List[List[np.ndarray]] = []
        for extent, t in zip(self.extents, tile):
            starts = range(0, extent, t)
            per_dim.append([np.arange(s, min(s + t, extent), dtype=np.int64) for s in starts])
        out: List[Tuple[np.ndarray, ...]] = []

        def rec(dim: int, prefix: Tuple[np.ndarray, ...]) -> None:
            if dim == len(per_dim):
                out.append(prefix)
                return
            for idx in per_dim[dim]:
                rec(dim + 1, prefix + (idx,))

        rec(0, ())
        return out

    @property
    def n_iterations(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n


@dataclass
class TileProfile:
    """Per-tile execution record (shape and iteration count)."""

    tiles: List[Tuple[Tuple[int, ...], int]] = field(default_factory=list)

    def record(self, shape: Tuple[int, ...]) -> None:
        n = 1
        for s in shape:
            n *= s
        self.tiles.append((shape, n))

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_iterations(self) -> int:
        return sum(n for _, n in self.tiles)

    @property
    def imbalance(self) -> float:
        """max/mean tile size — 1.0 means perfectly uniform tiles."""
        if not self.tiles:
            return 0.0
        sizes = [n for _, n in self.tiles]
        return max(sizes) / (sum(sizes) / len(sizes))


def parallel_for(
    space: ExecutionSpace,
    policy,
    functor: Callable,
    stats: Optional[KernelStats] = None,
    profile: bool = False,
) -> Optional[TileProfile]:
    """Execute ``functor`` over an iteration space on ``space``.

    ``policy`` is either an int ``n`` (flat range; functor receives an index
    array) or an :class:`MDRangePolicy` (functor receives one index array
    per dimension).  Returns a :class:`TileProfile` when ``profile=True``
    and the policy is an MDRange.
    """
    if isinstance(policy, MDRangePolicy):
        prof = TileProfile() if profile else None
        for tile in policy.tiles():
            functor(*tile)
            if prof is not None:
                prof.record(tuple(len(ix) for ix in tile))
        if stats is not None:
            stats.record(policy.n_iterations)
        return prof
    n = int(policy)
    for chunk in space.chunks(n):
        functor(chunk)
    if stats is not None:
        stats.record(n)
    return None


def parallel_reduce(
    space: ExecutionSpace,
    policy,
    functor: Callable,
    combine: Callable = np.add,
    stats: Optional[KernelStats] = None,
):
    """Reduce per-chunk partial results with a deterministic pairwise tree.

    ``functor(chunk_indices) -> partial`` for flat ranges, or
    ``functor(*tile_indices) -> partial`` for MDRanges.  ``combine`` must be
    associative-enough for the application (floating-point addition order is
    fixed, so results are reproducible bit-for-bit on every space).
    """
    partials = []
    if isinstance(policy, MDRangePolicy):
        for tile in policy.tiles():
            partials.append(functor(*tile))
        n = policy.n_iterations
    else:
        n = int(policy)
        for chunk in space.chunks(n):
            partials.append(functor(chunk))
    if stats is not None:
        stats.record(n)
    if not partials:
        raise ValueError("empty iteration space has no reduction identity here")
    return _tree_combine(partials, combine)


def parallel_scan(
    space: ExecutionSpace,
    n: int,
    values: np.ndarray,
    stats: Optional[KernelStats] = None,
) -> np.ndarray:
    """Exclusive prefix sum over ``values`` (length ``n``).

    Implemented chunk-wise like a two-pass GPU scan: per-chunk local scans,
    then a serial scan of chunk totals, then offset application — the
    dependency structure real backends use, with identical output.
    """
    values = np.asarray(values)
    if values.shape[0] != n:
        raise ValueError("values length must equal n")
    out = np.empty_like(values)
    chunk_list = list(space.chunks(n))
    totals = []
    for chunk in chunk_list:
        v = values[chunk]
        local = np.cumsum(v, axis=0)
        out[chunk] = local - v  # exclusive
        totals.append(local[-1] if len(v) else np.zeros_like(values[0]))
    offset = np.zeros_like(values[0]) if n else None
    for chunk, total in zip(chunk_list, totals):
        out[chunk] += offset
        offset = offset + total
    if stats is not None:
        stats.record(n)
    return out


def _tree_combine(partials: Sequence, combine: Callable):
    vals = list(partials)
    while len(vals) > 1:
        nxt = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(combine(vals[i], vals[i + 1]))
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]
