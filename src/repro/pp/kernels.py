"""Space-polymorphic parallel dispatch: ``parallel_for`` / ``parallel_reduce``
with flat ranges and tiled multi-dimensional ranges (``MDRangePolicy``).

The functor contract is **vectorized**: a flat-range functor receives a
numpy index array (one chunk of the iteration space) and performs its work
for all of them; an MDRange functor receives one tuple of index arrays per
dimension (a tile, in ``np.ix_``-ready form).  Backends differ only in how
they cut the index space — results are bit-identical across execution
spaces because chunks are disjoint and ordered.

``parallel_reduce`` and ``parallel_scan`` decompose the iteration space
with :func:`reduction_chunks` — a decomposition that depends **only on
the iteration count**, never on the execution space — and combine the
per-chunk partials with a fixed-order pairwise tree.  Because every
backend sees the same chunks in the same order, reductions and scans are
bit-for-bit identical across execution spaces (the §5.1 validation
property), not merely deterministic per space.

:class:`BoundKernel` is the picklable functor form (a registered
top-level kernel bound to its runtime arguments) that real process
backends (:mod:`repro.pp.procpool`) can ship to workers; closures still
work everywhere but execute in-process.

``MDRangePolicy`` supports the "finer-grained tile profiling" the paper
attributes to its Kokkos port: pass ``profile=True`` and per-tile
iteration counts/shapes are recorded on the returned :class:`TileProfile`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .execspace import ExecutionSpace, KernelStats

__all__ = [
    "BoundKernel",
    "MDRangePolicy",
    "TileProfile",
    "parallel_for",
    "parallel_reduce",
    "parallel_scan",
    "reduction_chunks",
]


class BoundKernel:
    """A top-level kernel function bound to its runtime arguments.

    Calling ``BoundKernel(fn, args)(*idx)`` is exactly
    ``fn(*idx, *args)`` — the form every registered kernel takes — so on
    the serial path it is indistinguishable from the closure it replaces.
    Unlike a closure, it is **picklable** whenever ``fn`` is a module-level
    function, which is what lets a process backend ship the functor to
    workers and remap its ndarray arguments into shared memory
    (:mod:`repro.pp.procpool`).
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: Tuple = ()):
        self.fn = fn
        self.args = tuple(args)

    def __call__(self, *idx):
        return self.fn(*idx, *self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"BoundKernel({name}, {len(self.args)} args)"


def reduction_chunks(n: int) -> List[np.ndarray]:
    """Space-independent chunking for reductions and scans.

    The decomposition depends only on ``n`` (grain =
    ``max(1024, ceil(n / 64))``), never on the execution space, so the
    fixed-order combine tree sees identical partials on every backend —
    that is what upgrades "deterministic per space" to "bit-for-bit
    across spaces".  ``n == 0`` produces no chunks.
    """
    if n < 0:
        raise ValueError("iteration count must be >= 0")
    if n == 0:
        return []
    grain = max(1024, -(-n // 64))
    return [
        np.arange(s, min(s + grain, n), dtype=np.int64) for s in range(0, n, grain)
    ]


@dataclass(frozen=True)
class MDRangePolicy:
    """A multi-dimensional iteration space with a tile shape.

    Parameters
    ----------
    extents:
        Iteration extents per dimension, e.g. ``(nz, ny, nx)``.
    tile:
        Tile shape; defaults to the full extent in every dimension but the
        first (so tiles are "pencils" along the leading dimension, the
        layout-friendly choice for LayoutRight data).
    """

    extents: Tuple[int, ...]
    tile: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.extents or any(e < 0 for e in self.extents):
            # Zero extents are legal (they produce zero tiles); only a
            # missing tuple or a negative extent is a caller error.
            raise ValueError("extents must be a non-empty tuple of integers >= 0")
        if self.tile is not None:
            if len(self.tile) != len(self.extents):
                raise ValueError("tile rank must match extents rank")
            if any(t < 1 for t in self.tile):
                raise ValueError("tile sizes must be >= 1")

    @property
    def effective_tile(self) -> Tuple[int, ...]:
        if self.tile is not None:
            return self.tile
        return (1,) + tuple(max(1, e) for e in self.extents[1:])

    def tiles(self) -> List[Tuple[np.ndarray, ...]]:
        """All tiles, each a tuple of per-dimension index arrays."""
        tile = self.effective_tile
        per_dim: List[List[np.ndarray]] = []
        for extent, t in zip(self.extents, tile):
            starts = range(0, extent, t)
            per_dim.append([np.arange(s, min(s + t, extent), dtype=np.int64) for s in starts])
        out: List[Tuple[np.ndarray, ...]] = []

        def rec(dim: int, prefix: Tuple[np.ndarray, ...]) -> None:
            if dim == len(per_dim):
                out.append(prefix)
                return
            for idx in per_dim[dim]:
                rec(dim + 1, prefix + (idx,))

        rec(0, ())
        return out

    @property
    def n_iterations(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n


@dataclass
class TileProfile:
    """Per-tile execution record (shape and iteration count)."""

    tiles: List[Tuple[Tuple[int, ...], int]] = field(default_factory=list)

    def record(self, shape: Tuple[int, ...]) -> None:
        n = 1
        for s in shape:
            n *= s
        self.tiles.append((shape, n))

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_iterations(self) -> int:
        return sum(n for _, n in self.tiles)

    @property
    def imbalance(self) -> float:
        """max/mean tile size — 1.0 means perfectly uniform tiles."""
        if not self.tiles:
            return 0.0
        sizes = [n for _, n in self.tiles]
        return max(sizes) / (sum(sizes) / len(sizes))


def parallel_for(
    space: ExecutionSpace,
    policy,
    functor: Callable,
    stats: Optional[KernelStats] = None,
    profile: bool = False,
) -> Optional[TileProfile]:
    """Execute ``functor`` over an iteration space on ``space``.

    ``policy`` is either an int ``n`` (flat range; functor receives an index
    array) or an :class:`MDRangePolicy` (functor receives one index array
    per dimension).  Returns a :class:`TileProfile` when ``profile=True``
    and the policy is an MDRange.
    """
    if isinstance(policy, MDRangePolicy):
        tiles = policy.tiles()
        t0 = time.perf_counter() if stats is not None else 0.0
        space.run_tiles(functor, tiles)
        elapsed = time.perf_counter() - t0 if stats is not None else 0.0
        prof = None
        if profile:
            prof = TileProfile()
            for tile in tiles:
                prof.record(tuple(len(ix) for ix in tile))
        if stats is not None:
            stats.record(policy.n_iterations, elapsed)
        return prof
    n = int(policy)
    if stats is not None:
        t0 = time.perf_counter()
        space.run_chunks(functor, list(space.chunks(n)))
        stats.record(n, time.perf_counter() - t0)
    else:
        space.run_chunks(functor, list(space.chunks(n)))
    return None


def parallel_reduce(
    space: ExecutionSpace,
    policy,
    functor: Callable,
    combine: Callable = np.add,
    stats: Optional[KernelStats] = None,
):
    """Reduce per-chunk partial results with a deterministic pairwise tree.

    ``functor(chunk_indices) -> partial`` for flat ranges, or
    ``functor(*tile_indices) -> partial`` for MDRanges.  The functor must be
    **pure** with respect to its array arguments (Kokkos reducer contract) —
    backends may evaluate chunks in worker processes.  ``combine`` need not
    be commutative: partials are combined in a fixed-order pairwise tree
    over the space-independent :func:`reduction_chunks` decomposition, so
    results are reproducible bit-for-bit on every space.

    An empty iteration space — flat ``n == 0`` **or** an MDRange with any
    zero extent — raises ``ValueError``: with a caller-supplied ``combine``
    there is no identity element to return.
    """
    t0 = time.perf_counter() if stats is not None else 0.0
    if isinstance(policy, MDRangePolicy):
        n = policy.n_iterations
        partials = space.map_tiles(functor, policy.tiles())
    else:
        n = int(policy)
        partials = space.map_chunks(functor, reduction_chunks(n))
    if stats is not None:
        stats.record(n, time.perf_counter() - t0)
    if not partials:
        raise ValueError(
            "empty iteration space has no reduction identity here "
            "(flat n == 0 and MDRange zero extents both raise)"
        )
    return _tree_combine(partials, combine)


def _scan_local(
    chunk: np.ndarray,
    values: np.ndarray,
    out: np.ndarray,
    totals: np.ndarray,
    starts: np.ndarray,
) -> None:
    """Per-chunk exclusive local scan; records the chunk total.

    Top-level (picklable) so a process backend can run the local-scan pass
    in workers; the chunk's slot in ``totals`` is recovered from its first
    index via ``starts`` (chunks are contiguous and sorted).
    """
    v = values[chunk]
    local = np.cumsum(v, axis=0)
    out[chunk] = local - v  # exclusive
    totals[np.searchsorted(starts, chunk[0])] = local[-1]


def parallel_scan(
    space: ExecutionSpace,
    n: int,
    values: np.ndarray,
    stats: Optional[KernelStats] = None,
) -> np.ndarray:
    """Exclusive prefix sum over ``values`` (length ``n``).

    Implemented chunk-wise like a two-pass GPU scan: per-chunk local scans
    (parallelizable, dispatched through the space), then a serial scan of
    chunk totals with offset application.  The decomposition is the
    space-independent :func:`reduction_chunks`, so output is bit-for-bit
    identical on every backend.  ``n == 0`` is a legal launch and returns
    an empty array of the same dtype/trailing shape.
    """
    values = np.asarray(values)
    if values.shape[0] != n:
        raise ValueError("values length must equal n")
    out = np.empty_like(values)
    if n == 0:
        if stats is not None:
            stats.record(n)
        return out
    t0 = time.perf_counter() if stats is not None else 0.0
    chunk_list = reduction_chunks(n)
    starts = np.array([c[0] for c in chunk_list], dtype=np.int64)
    totals = np.zeros((len(chunk_list),) + values.shape[1:], dtype=out.dtype)
    space.run_chunks(
        BoundKernel(_scan_local, (values, out, totals, starts)), chunk_list
    )
    offset = np.zeros_like(values[0])
    for k, chunk in enumerate(chunk_list):
        out[chunk] += offset
        offset = offset + totals[k]
    if stats is not None:
        stats.record(n, time.perf_counter() - t0)
    return out


def _tree_combine(partials: Sequence, combine: Callable):
    vals = list(partials)
    while len(vals) > 1:
        nxt = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(combine(vals[i], vals[i + 1]))
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]
