"""Backend selection: the implementation portfolio (§5.1.1).

"Our team has actively developed architecture-specific versions (CUDA,
HIP, and Athread) of LICOM ... We also implemented a performance-portable
version using Kokkos ... This portfolio of implementations enables AP3ESM
to flexibly select the most suitable implementation for each architecture
to achieve optimal performance."

:func:`select_backend` is that selection: given a machine spec it returns
the execution space kernels should run on (the Athread/CPE cluster on
Sunway, the HIP-like GPU device on ORISE, host threads elsewhere), along
with the implementation label the paper would use.

This lives in ``repro.pp`` because the choice is component-agnostic: the
same execution space is shared by every component through the
``ComponentContext`` (see :mod:`repro.esm.component`).  ``ocn.backends``
re-exports these names for backward compatibility.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..machine.spec import MachineSpec
from .execspace import CPECluster, ExecutionSpace, GPUDevice, HostThreads, Serial

__all__ = ["select_backend", "make_backend", "BACKEND_PORTFOLIO"]

#: Implementation portfolio: label -> how it maps onto our exec spaces.
BACKEND_PORTFOLIO = {
    "athread": "Sunway CPE cluster (swLICOM)",
    "hip": "GPU device (LICOM3-HIP / LICOMK++ HIP backend)",
    "kokkos-host": "host threads (LICOMK++ OpenMP backend)",
    "serial": "reference single-core",
}


def select_backend(machine: MachineSpec, host_fallback_threads: int = 8) -> Tuple[str, ExecutionSpace]:
    """(implementation label, execution space) for a machine.

    Selection mirrors the paper's practice: Athread on SW26010P nodes,
    the HIP backend on GPU nodes (identified by PCIe staging), the Kokkos
    host backend on plain multicore nodes, serial for single-lane runs.
    """
    node = machine.node
    if "SW26010" in node.name or "sunway" in machine.name.lower():
        # One process per core group: 64 CPEs behind each rank.
        return "athread", CPECluster(64)
    if node.staging_bw is not None:
        return "hip", GPUDevice()
    if node.cores_per_process > 1 or node.processes_per_node > 1:
        return "kokkos-host", HostThreads(host_fallback_threads)
    return "serial", Serial()


def make_backend(name: str, workers: Optional[int] = None) -> ExecutionSpace:
    """Construct an execution space from a CLI/config backend name.

    ``serial``, ``threads`` (modeled multicore), ``cpe``, ``gpu`` are the
    modeled spaces; ``procs`` is the *real* shared-memory process pool
    (:func:`repro.pp.procpool.ProcPool`) that occupies host cores while
    staying bitwise-identical to ``serial``.  ``workers`` sizes the lane
    count where it applies (0 / None means the space default).
    """
    from .procpool import ProcPool  # deferred: keeps multiprocessing import lazy

    n = workers if workers else None
    table = {
        "serial": lambda: Serial(),
        "threads": lambda: HostThreads(n or 8),
        "cpe": lambda: CPECluster(n or 64),
        "gpu": lambda: GPUDevice(n or 4096),
        "procs": lambda: ProcPool(n),
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(table)}"
        ) from None
