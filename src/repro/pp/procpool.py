"""ProcPool: a real multi-core execution backend for the pp layer.

Every other :class:`~repro.pp.execspace.ExecutionSpace` *models* parallel
cost while executing chunks serially in numpy.  ``ProcPool`` actually
occupies the host: a persistent ``multiprocessing`` worker pool executes
chunks and tiles concurrently, with kernel array arguments staged into
``multiprocessing.shared_memory`` segments so workers map them zero-copy
(:class:`SharedView`).  Dispatch goes through the same four execution
hooks every space implements, so ``parallel_for`` / ``parallel_reduce`` /
``parallel_scan`` and all registered component kernels run unchanged —
and, because the chunk decomposition and the fixed-order combine tree are
space-independent, **bit-for-bit identically** to the serial backend
(the §5.1 validation property).

What parallelizes, and what falls back
--------------------------------------

* Side-effecting paths (``run_chunks`` / ``run_tiles``) ship work to the
  pool only for :class:`~repro.pp.kernels.BoundKernel` functors — a
  module-level kernel bound to its arguments, the form every
  ``KernelRegistry.launch`` produces.  Worker writes land in the caller's
  arrays because every ndarray argument is remapped into shared memory
  and copied back after the dispatch.  Closures cannot make that
  guarantee (their captured arrays would be silently copied by fork/
  pickle and the writes lost), so they run in-process, counted as
  fallbacks.
* Pure paths (``map_chunks`` / ``map_tiles`` — the reducer contract) also
  accept any picklable functor, since only the *return values* travel
  back.
* Single-chunk launches and unpicklable functors always fall back to
  in-process execution; correctness never depends on the pool.

Shared-memory lifetime rules
----------------------------

Segments are owned by the parent: a power-of-two arena acquires them on
first use, reuses them across dispatches (workers cache their
attachments by segment name), and closes + unlinks them in
:meth:`ProcPoolRuntime.shutdown` (also registered via ``atexit``).
Workers never unlink.  Under the default ``fork`` start method the
resource tracker is shared, so worker attachments need no registration
bookkeeping; under ``spawn`` each attach is unregistered child-side to
keep the tracker from double-unlinking.

Obs metrics: ``pp.procpool.dispatches``, ``pp.procpool.tasks``,
``pp.procpool.fallbacks`` (counters), ``pp.procpool.bytes_shared`` and
``pp.procpool.occupancy`` (gauges).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import pickle
import sys
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .execspace import ExecutionSpace
from .kernels import BoundKernel

__all__ = ["ProcPool", "ProcPoolRuntime", "ProcPoolSpace", "PoolStats", "SharedView"]


@dataclass(frozen=True)
class SharedView:
    """Picklable recipe for re-materializing a numpy array in a worker.

    Workers attach the named segment (cached per worker by name) and wrap
    its buffer with ``np.ndarray(shape, dtype, buffer=...)`` — no data is
    copied across the process boundary.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def materialize(self, buf) -> np.ndarray:
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=buf)


# -- worker side -----------------------------------------------------------

_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_UNREGISTER_ON_ATTACH = False


def _pool_init(unregister_on_attach: bool) -> None:
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = unregister_on_attach


def _attach(view: SharedView) -> np.ndarray:
    shm = _ATTACHED.get(view.name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=view.name)
        if _UNREGISTER_ON_ATTACH:
            # Under spawn each process runs its own resource tracker; the
            # parent owns the segment, so drop the child-side registration
            # or the tracker would unlink it twice.  Under fork the
            # tracker is shared and registrations dedupe — do nothing.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        _ATTACHED[view.name] = shm
    return view.materialize(shm.buf)


def _unpack_index(spec) -> np.ndarray:
    if isinstance(spec, tuple):
        lo, hi = spec
        return np.arange(lo, hi, dtype=np.int64)
    return spec


def _exec_bound(fn: Callable, arg_specs: Tuple, idx_specs: List, tiled: bool) -> List:
    """Run a batch of chunks/tiles of one bound kernel in this worker."""
    args = tuple(_attach(a) if isinstance(a, SharedView) else a for a in arg_specs)
    out = []
    for spec in idx_specs:
        if tiled:
            out.append(fn(*(_unpack_index(s) for s in spec), *args))
        else:
            out.append(fn(_unpack_index(spec), *args))
    return out


def _exec_plain(functor: Callable, idx_specs: List, tiled: bool) -> List:
    """Run a batch of chunks/tiles of a self-contained picklable functor."""
    out = []
    for spec in idx_specs:
        if tiled:
            out.append(functor(*(_unpack_index(s) for s in spec)))
        else:
            out.append(functor(_unpack_index(spec)))
    return out


# -- parent side -----------------------------------------------------------


def _pack_index(idx: np.ndarray):
    """Encode a contiguous ascending index array as a (lo, hi) range."""
    n = len(idx)
    if n and int(idx[-1]) - int(idx[0]) + 1 == n and np.all(np.diff(idx) == 1):
        lo = int(idx[0])
        return (lo, lo + n)
    return idx


class _ShmArena:
    """Power-of-two freelist of shared-memory segments, reused forever.

    Reuse matters twice over: segment creation is a syscall + mmap, and
    workers cache attachments by name — a recycled segment is already
    mapped in every worker that has seen it.
    """

    MIN_BYTES = 4096

    def __init__(self) -> None:
        self._free: Dict[int, List[shared_memory.SharedMemory]] = {}
        self._all: List[shared_memory.SharedMemory] = []

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        size = max(self.MIN_BYTES, 1 << max(0, int(nbytes) - 1).bit_length())
        bucket = self._free.get(size)
        if bucket:
            return bucket.pop()
        shm = shared_memory.SharedMemory(create=True, size=size)
        self._all.append(shm)
        return shm

    def release(self, shm: shared_memory.SharedMemory) -> None:
        self._free.setdefault(shm.size, []).append(shm)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._all)

    def destroy(self) -> None:
        for shm in self._all:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._all.clear()
        self._free.clear()


@dataclass
class PoolStats:
    """Cumulative dispatch statistics for one :class:`ProcPoolRuntime`."""

    workers: int = 0
    dispatches: int = 0  # launches fanned across the pool
    tasks: int = 0  # worker task batches submitted
    fallbacks: int = 0  # launches executed in-process instead
    bytes_shared: int = 0  # cumulative bytes staged into shared memory

    @property
    def occupancy(self) -> float:
        """Mean worker tasks per dispatch relative to pool width."""
        if not self.dispatches or not self.workers:
            return 0.0
        return self.tasks / (self.dispatches * self.workers)


class ProcPoolRuntime:
    """Owner of the worker pool, the shared-memory arena, and the stats.

    Lazily started: the pool forks on the first dispatch — or eagerly via
    :meth:`ensure_started`, which the coupled driver calls *before* it
    spawns scheduler threads (forking a threaded process is the classic
    deadlock; fork first, thread later).
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.stats = PoolStats(workers=n_workers)
        self.obs: Optional[Any] = None
        self._pool = None
        self._arena = _ShmArena()
        # Keyed by the callable itself (a strong reference): id() keys are
        # unsafe because CPython reuses addresses of collected functions,
        # which would let a dead lambda's verdict shadow a real kernel.
        self._picklable: Dict[Callable, bool] = {}

    # -- lifecycle ---------------------------------------------------------

    def ensure_started(self) -> None:
        if self._pool is not None:
            return
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        unregister = ctx.get_start_method() != "fork"
        if not unregister:
            # Start the resource tracker BEFORE forking so workers inherit
            # it: attach registrations then dedupe in the one shared
            # tracker and the parent's unlink cleans up exactly once.  A
            # worker forked tracker-less would lazily spawn its own and
            # report every cached attachment as leaked at exit.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker API moved
                pass
        self._pool = ctx.Pool(
            self.n_workers, initializer=_pool_init, initargs=(unregister,)
        )
        atexit.register(self.shutdown)

    @property
    def started(self) -> bool:
        return self._pool is not None

    def shutdown(self) -> None:
        """Terminate workers and unlink every shared segment (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._arena.destroy()

    # -- dispatch ----------------------------------------------------------

    def _fn_picklable(self, fn: Callable) -> bool:
        """True if ``fn`` can be shipped to a worker AND resolved there.

        Picklability alone is not enough: a function defined in
        ``__main__`` (or in a local scope) pickles by reference in the
        parent but cannot be resolved in a worker that forked before the
        definition existed — the unpickling AttributeError kills the
        worker mid-``get()`` and the dispatch hangs.  Such functors are
        refused up front and run in-process instead.
        """
        try:
            ok = self._picklable.get(fn)
        except TypeError:  # unhashable callable
            return self._resolvable(fn)
        if ok is None:
            ok = self._resolvable(fn)
            self._picklable[fn] = ok
        return ok

    @staticmethod
    def _resolvable(fn: Callable) -> bool:
        mod = getattr(fn, "__module__", None)
        qual = getattr(fn, "__qualname__", None)
        if mod == "__main__" or (qual is not None and "<" in qual):
            return False
        if qual is not None and mod is not None:
            # A plain function: verify it resolves back to itself, the
            # exact lookup a worker performs when unpickling by reference.
            obj: Any = sys.modules.get(mod)
            for part in qual.split("."):
                obj = getattr(obj, part, None)
            if obj is not fn:
                return False
        try:
            pickle.dumps(fn)
            return True
        except Exception:
            return False

    def _fallback(self) -> None:
        self.stats.fallbacks += 1
        if self.obs is not None:
            self.obs.counter("pp.procpool.fallbacks").inc()

    def _stage_args(self, args: Tuple):
        """Replace ndarray args with SharedViews; returns (specs, staged).

        Deduplicates by object identity so aliased arguments share one
        segment (writes through either name stay coherent in workers).
        Returns ``None`` if an argument cannot cross the boundary.
        """
        specs: List[Any] = []
        staged: Dict[int, Tuple[np.ndarray, shared_memory.SharedMemory]] = {}
        views: Dict[int, SharedView] = {}
        for a in args:
            if isinstance(a, np.ndarray):
                if a.dtype.hasobject:
                    return None, None
                key = id(a)
                if key not in staged:
                    shm = self._arena.acquire(a.nbytes)
                    shared = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf)
                    shared[...] = a
                    staged[key] = (a, shm)
                    views[key] = SharedView(shm.name, a.shape, a.dtype.str)
                    self.stats.bytes_shared += int(a.nbytes)
                specs.append(views[key])
            else:
                if callable(a) and not self._fn_picklable(a):
                    return None, None
                specs.append(a)
        return specs, staged

    def _submit(self, worker_fn, payloads: List[Tuple]) -> List:
        batches = self._pool.starmap(worker_fn, payloads)
        self.stats.dispatches += 1
        self.stats.tasks += len(payloads)
        if self.obs is not None:
            self.obs.counter("pp.procpool.dispatches").inc()
            self.obs.counter("pp.procpool.tasks").inc(float(len(payloads)))
            self.obs.gauge("pp.procpool.occupancy").set(self.stats.occupancy)
            self.obs.gauge("pp.procpool.bytes_shared").set(
                float(self.stats.bytes_shared)
            )
        return [r for batch in batches for r in batch]

    def _batched(self, idx_sets: Sequence, tiled: bool) -> List[List]:
        """Pack index sets into at most ``2 * n_workers`` ordered batches."""
        n_tasks = min(len(idx_sets), self.n_workers * 2)
        bounds = np.linspace(0, len(idx_sets), n_tasks + 1).astype(int)
        packed = [
            tuple(_pack_index(ix) for ix in s) if tiled else _pack_index(s)
            for s in idx_sets
        ]
        return [
            list(packed[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def try_bound(
        self,
        functor: Callable,
        idx_sets: Sequence,
        tiled: bool,
        writeback: bool,
    ) -> Optional[List]:
        """Dispatch a BoundKernel launch; ``None`` means caller must fall back."""
        if not isinstance(functor, BoundKernel) or len(idx_sets) < 2:
            self._fallback()
            return None
        if not self._fn_picklable(functor.fn):
            self._fallback()
            return None
        specs, staged = self._stage_args(functor.args)
        if specs is None:
            self._fallback()
            return None
        self.ensure_started()
        try:
            payloads = [
                (functor.fn, tuple(specs), batch, tiled)
                for batch in self._batched(idx_sets, tiled)
            ]
            results = self._submit(_exec_bound, payloads)
        finally:
            if writeback:
                for a, shm in staged.values():
                    if a.flags.writeable:
                        a[...] = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf)
            for _, shm in staged.values():
                self._arena.release(shm)
        return results

    def try_plain(self, functor: Callable, idx_sets: Sequence, tiled: bool) -> Optional[List]:
        """Dispatch a pure self-contained functor (map paths only)."""
        if len(idx_sets) < 2 or not self._fn_picklable(functor):
            self._fallback()
            return None
        self.ensure_started()
        payloads = [
            (functor, batch, tiled) for batch in self._batched(idx_sets, tiled)
        ]
        return self._submit(_exec_plain, payloads)


@dataclass(frozen=True)
class ProcPoolSpace(ExecutionSpace):
    """ExecutionSpace whose hooks fan chunks/tiles across a worker pool.

    Decomposition (``chunks`` / ``reduction_chunks`` / tiles) is inherited
    unchanged, so results are bitwise-identical to Serial; only the
    *where* changes.  Launches the pool cannot take (closure functors on
    write paths, single chunks, unpicklable anything) run in-process via
    the base-class hooks and are counted as fallbacks.
    """

    runtime: ProcPoolRuntime = field(default=None)  # type: ignore[assignment]

    def run_chunks(self, functor, chunks) -> None:
        if isinstance(functor, BoundKernel):
            if self.runtime.try_bound(functor, chunks, tiled=False, writeback=True) is not None:
                return
        else:
            self.runtime._fallback()
        super().run_chunks(functor, chunks)

    def run_tiles(self, functor, tiles) -> None:
        if isinstance(functor, BoundKernel):
            if self.runtime.try_bound(functor, tiles, tiled=True, writeback=True) is not None:
                return
        else:
            self.runtime._fallback()
        super().run_tiles(functor, tiles)

    def map_chunks(self, functor, chunks):
        if isinstance(functor, BoundKernel):
            out = self.runtime.try_bound(functor, chunks, tiled=False, writeback=False)
        else:
            out = self.runtime.try_plain(functor, chunks, tiled=False)
        if out is not None:
            return out
        return super().map_chunks(functor, chunks)

    def map_tiles(self, functor, tiles):
        if isinstance(functor, BoundKernel):
            out = self.runtime.try_bound(functor, tiles, tiled=True, writeback=False)
        else:
            out = self.runtime.try_plain(functor, tiles, tiled=True)
        if out is not None:
            return out
        return super().map_tiles(functor, tiles)


def ProcPool(n_workers: Optional[int] = None) -> ProcPoolSpace:
    """A shared-memory process-pool execution space over ``n_workers`` cores.

    Defaults to every available core.  The pool itself starts lazily on
    the first parallel dispatch; call ``space.runtime.ensure_started()``
    to fork it eagerly (required before creating threads), and
    ``space.runtime.shutdown()`` to release workers and shared segments.
    """
    n = n_workers if n_workers is not None else (mp.cpu_count() or 1)
    if n < 1:
        raise ValueError("n_workers must be >= 1")
    return ProcPoolSpace(
        name="ProcPool",
        lanes=n,
        flops_per_lane=3.2e9,
        launch_overhead_s=5e-5,
        runtime=ProcPoolRuntime(n),
    )
