"""Hash-based kernel registration and callback.

§5.3 of the paper: "For the Sunway architecture, we propose a hash-based
function registration and callback mechanism to enable Kokkos execution on
TMP-constrained Sunway processors."  The Sunway compilers cannot instantiate
C++ template functors on the CPEs, so the port registers every kernel under
a stable hash at host-side start-up; the device receives only the hash and
*calls back* into the registered function.

This module reproduces that mechanism: kernels are registered under a
stable content hash (qualified name + arity), lookups go through the hash
only, and double-registration under a colliding hash is detected — the
failure mode the real system must guard against.

It also implements the **hybrid host-device parallelism** of §5.3: a
:class:`HybridDispatcher` splits one iteration space between a host space
and a device space in a tunable ratio, which is how the port keeps the MPE
busy while the CPEs work.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .execspace import ExecutionSpace
from .kernels import BoundKernel, parallel_for

__all__ = ["KernelRegistry", "kernel_hash", "HybridDispatcher"]


def kernel_hash(fn: Callable) -> int:
    """Stable 64-bit hash identifying a kernel function.

    Derived from the qualified name and parameter list — the information a
    host-side registration pass has about a functor.  Content (bytecode) is
    deliberately excluded: the host and device binaries of the real system
    are compiled separately, so only the interface can be hashed.
    """
    try:
        sig = str(inspect.signature(fn))
    except (TypeError, ValueError):
        sig = "(?)"
    ident = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}{sig}"
    digest = hashlib.sha256(ident.encode()).digest()
    return int.from_bytes(digest[:8], "little")


class KernelRegistry:
    """Host-side table of device-callable kernels, keyed by hash.

    Registries are cheap per-context objects: every
    :class:`~repro.esm.component.ComponentContext` owns one, and the
    component modules expose ``make_*_registry()`` factories so
    concurrent model instances (ensemble members) never share launch
    bookkeeping.  ``launch_counts`` records per-kernel launches through
    *this* registry — the state that would alias across instances if the
    registries were process-global singletons.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self._table: Dict[int, Callable] = {}
        self._names: Dict[int, str] = {}
        self.launch_counts: Dict[str, int] = {}

    def register(self, fn: Callable, name: Optional[str] = None) -> int:
        """Register ``fn``; returns its hash handle.

        Re-registering the *same* function is idempotent; registering a
        *different* function under a colliding hash raises (hash collisions
        would silently corrupt device dispatch otherwise).
        """
        h = kernel_hash(fn)
        existing = self._table.get(h)
        if existing is not None and existing is not fn:
            raise ValueError(
                f"hash collision: {self._names[h]!r} and "
                f"{getattr(fn, '__qualname__', fn)!r} map to {h:#x}"
            )
        self._table[h] = fn
        self._names[h] = getattr(fn, "__qualname__", repr(fn))
        return h

    def kernel(self, fn: Callable) -> Callable:
        """Decorator form: ``@registry.kernel``."""
        self.register(fn)
        return fn

    def lookup(self, handle: int) -> Callable:
        """Device-side callback: resolve a hash to the registered kernel."""
        try:
            return self._table[handle]
        except KeyError:
            raise KeyError(f"no kernel registered under handle {handle:#x}") from None

    def launch(self, space: ExecutionSpace, handle: int, policy, *args, **kwargs):
        """Launch-by-handle: what the device runtime does with the hash.

        Works for flat ranges (kernel receives one index-array chunk) and
        for :class:`~repro.pp.kernels.MDRangePolicy` (kernel receives one
        index array per dimension, ``np.ix_``-ready).  The functor is a
        picklable :class:`~repro.pp.kernels.BoundKernel`, so process
        backends can ship registered kernels to workers; serial behavior
        is unchanged (``BoundKernel(fn, args)(*idx) == fn(*idx, *args)``).
        """
        fn = self.lookup(handle)
        kname = self._names[handle]
        self.launch_counts[kname] = self.launch_counts.get(kname, 0) + 1
        return parallel_for(space, policy, BoundKernel(fn, args), **kwargs)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, handle: int) -> bool:
        return handle in self._table


@dataclass
class HybridDispatcher:
    """Split one flat iteration space between host and device spaces.

    Parameters
    ----------
    host, device:
        The two execution spaces sharing the work.
    device_fraction:
        Fraction of iterations sent to the device; the remainder runs on
        the host concurrently.  The optimal split equalizes the two
        modeled finish times; :meth:`balanced_fraction` computes it from
        the spaces' modeled throughputs.
    """

    host: ExecutionSpace
    device: ExecutionSpace
    device_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.device_fraction <= 1.0:
            raise ValueError("device_fraction must be in [0, 1]")

    def split(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """(host_indices, device_indices) partitioning ``range(n)``."""
        n_dev = int(round(n * self.device_fraction))
        dev = np.arange(0, n_dev, dtype=np.int64)
        host = np.arange(n_dev, n, dtype=np.int64)
        return host, dev

    def run(self, n: int, functor: Callable) -> None:
        """Execute ``functor`` over the split space (device part first, as
        the real system launches the CPE kernel before the MPE tail)."""
        host_idx, dev_idx = self.split(n)
        if len(dev_idx):
            parallel_for(self.device, len(dev_idx), lambda c: functor(dev_idx[c]))
        if len(host_idx):
            parallel_for(self.host, len(host_idx), lambda c: functor(host_idx[c]))

    def modeled_time(self, flops_per_iter: float, n: int) -> float:
        """Modeled wall time: max of the two concurrent parts."""
        host_idx, dev_idx = self.split(n)
        t_dev = self.device.modeled_time(flops_per_iter * len(dev_idx)) if len(dev_idx) else 0.0
        t_host = self.host.modeled_time(flops_per_iter * len(host_idx)) if len(host_idx) else 0.0
        return max(t_dev, t_host)

    def balanced_fraction(self) -> float:
        """Device fraction that equalizes modeled host/device finish time."""
        dev_rate = self.device.lanes * self.device.flops_per_lane
        host_rate = self.host.lanes * self.host.flops_per_lane
        return dev_rate / (dev_rate + host_rate)

    def rebalanced(self) -> "HybridDispatcher":
        return HybridDispatcher(self.host, self.device, self.balanced_fraction())
