"""Table 2 + Fig. 8a: strong scaling of OCN, ATM, and the coupled AP3ESM.

For each published curve the machine model is calibrated on the curve's
anchor endpoints; every other published point is a *prediction* and is
reported paper-vs-model.  Coupled curves compose the standalone component
calibrations (only a sync-imbalance scalar sees coupled data).  The
headline claims — 0.85 SYPD ATM@1km, 1.98 SYPD OCN@1km, 0.54 SYPD coupled
1v1, 84-184x MPE->CPE speedups, 1.2x over the GB'24 record — are asserted.
"""

import pytest

from repro.bench import (
    format_table,
    HEADLINES,
    STRONG_SCALING_CURVES,
    banner,
    coupled_curve,
    evaluate_all_curves,
    evaluate_curve,
    format_curve_result,
)


@pytest.fixture(scope="module")
def component_results():
    return evaluate_all_curves()


@pytest.fixture(scope="module")
def coupled_results():
    return {label: coupled_curve(label) for label in ("3v2", "1v1")}


def test_fig8a_report(component_results, coupled_results, emit_report):
    sections = [banner("Table 2 / Fig. 8a — strong scaling (paper vs model)")]
    for key in (
        "ocn_1km_orise_original", "ocn_1km_orise_opt",
        "ocn_2km_mpe", "ocn_2km_cpe",
        "atm_3km_mpe", "atm_3km_cpe", "atm_1km_cpe",
    ):
        sections.append(format_curve_result(component_results[key]))
    for label, result in coupled_results.items():
        sections.append(format_curve_result(result))
    emit_report("table2_fig8a_strong_scaling", "\n".join(sections))


def test_headline_atm_1km(component_results):
    """ATM 1 km: 0.85 SYPD on 34.1 M cores."""
    r = component_results["atm_1km_cpe"]
    assert r.modeled[-1] == pytest.approx(HEADLINES["atm_1km_sypd"], rel=0.01)
    assert r.resources[-1] == pytest.approx(HEADLINES["atm_1km_cores"], rel=0.01)


def test_headline_ocn_1km(component_results):
    """OCN 1 km: 1.98 SYPD on 16085 GPUs."""
    r = component_results["ocn_1km_orise_opt"]
    assert r.modeled[-1] == pytest.approx(HEADLINES["ocn_1km_sypd"], rel=0.01)
    assert r.resources[-1] == HEADLINES["ocn_1km_gpus"]


def test_headline_coupled_1v1(coupled_results):
    """Coupled 1v1: 0.54 SYPD on 37.2 M cores with 90.7 % efficiency."""
    r = coupled_results["1v1"]
    assert r.modeled[-1] == pytest.approx(HEADLINES["coupled_1v1_sypd"], rel=0.15)
    assert r.curve.published_efficiency() == pytest.approx(
        HEADLINES["coupled_1v1_efficiency"], abs=0.01
    )


def test_mpe_to_cpe_speedup_band(component_results):
    """§7.2: 'a performance acceleration ranging from 112 to 184 times'."""
    mpe = component_results["atm_3km_mpe"]
    cpe = component_results["atm_3km_cpe"]
    lo, hi = HEADLINES["mpe_to_cpe_speedup_atm"]
    small = cpe.modeled[0] / mpe.modeled[0]
    large = cpe.modeled[-1] / mpe.modeled[-1]
    assert lo * 0.8 < small < hi * 1.2
    assert lo * 0.8 < large < hi * 1.2


def test_speedup_vs_gb24_record(component_results):
    """§7.2: 'this work attains a speedup of 1.2x compared to the best
    record' at the largest ORISE scale."""
    opt = component_results["ocn_1km_orise_opt"].modeled[-1]
    rec = component_results["ocn_1km_orise_original"].modeled[-1]
    assert opt / rec == pytest.approx(HEADLINES["speedup_vs_gb24_record"], abs=0.1)


def test_interior_predictions_hold(component_results):
    for key, r in component_results.items():
        assert r.max_prediction_error() < 0.20, key


def test_benchmark_curve_evaluation(benchmark):
    """Timed kernel: one full curve calibration + evaluation."""
    curve = STRONG_SCALING_CURVES["atm_3km_cpe"]
    result = benchmark(evaluate_curve, curve)
    assert result.modeled[0] > 0


def test_all_pairings_prediction_report(emit_report):
    """Model-only completion of Table 1 -> Table 2: coupled SYPD for every
    pairing at the 3v2 run's largest scale (36.6 M cores).  The paper
    publishes only 3v2 (1.01) and 1v1 (0.54 at 37.2 M); the rest are
    predictions from the same composed calibrations."""
    from repro.bench import predict_pairing_sypd

    rows = []
    published = {"3v2": 1.01, "1v1": 0.54}
    for label in ("25v10", "10v5", "6v3", "3v2", "1v1"):
        out = predict_pairing_sypd(label, 36_553_140)
        rows.append((label, published.get(label), out["sypd"],
                     f"{out['procs_domain1']:.0f}/{out['procs_domain2']:.0f}"))
    emit_report(
        "table1_pairings_predicted",
        "\n".join([
            banner("All Table 1 pairings at 36.6 M cores (model predictions)"),
            format_table(
                ["pairing", "paper SYPD", "model SYPD", "domain split (atm/ocn)"],
                rows,
            ),
        ]),
    )
    # Monotonicity: finer coupled configurations are slower.
    sypds = [predict_pairing_sypd(l, 36_553_140)["sypd"]
             for l in ("25v10", "10v5", "6v3", "3v2", "1v1")]
    assert all(a >= b for a, b in zip(sypds, sypds[1:]))


# -- JSON perf baseline (model outputs are deterministic -> gated) -----------

BENCH_JSON = "BENCH_scaling.json"
BASELINE_DIR = __import__("pathlib").Path(__file__).parent / "baselines"


def _bench_document(component_results, coupled_results):
    from repro.bench import PerfBaseline

    doc = PerfBaseline(suite="scaling")
    for key, r in component_results.items():
        doc.record(f"sypd.{key}", r.modeled[-1], kind="model", unit="SYPD")
        doc.record(f"prediction_error.{key}", r.max_prediction_error(),
                   kind="model")
    for label, r in coupled_results.items():
        doc.record(f"sypd.coupled_{label}", r.modeled[-1],
                   kind="model", unit="SYPD")
    return doc


def test_emit_bench_scaling_json(component_results, coupled_results, report_dir):
    """Emit BENCH_scaling.json for the CI perf gate."""
    from repro.bench import emit

    doc = _bench_document(component_results, coupled_results)
    emit(doc, report_dir)


def test_gate_against_committed_baseline(component_results, coupled_results):
    from repro.bench import PerfBaseline, compare_baselines

    baseline_path = BASELINE_DIR / BENCH_JSON
    if not baseline_path.exists():
        pytest.skip("no committed baseline yet")
    doc = _bench_document(component_results, coupled_results)
    comparison = compare_baselines(
        doc, PerfBaseline.from_file(baseline_path), tolerance=0.15
    )
    print("\n" + comparison.report())
    assert comparison.ok, comparison.report()
