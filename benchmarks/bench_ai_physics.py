"""§5.2.1: the AI-powered resolution-adaptive physics suite.

Verifies the published architecture (5 ResUnits / 11 conv layers /
~5x10^5 parameters; 7-layer residual MLP), trains the suite on the
paper's 80-day 7:1 protocol (miniaturized), and measures the headline
claim: "computational gains by unifying most operations into highly
efficient tensor kernels" — AI-suite inference vs the conventional suite,
per column, wall clock.
"""

import time

import numpy as np
import pytest

from repro.ai import build_radiation_mlp, build_tendency_cnn, split_by_days
from repro.atm import (
    AIPhysicsSuite,
    ConventionalPhysics,
    generate_training_archive,
    synthetic_columns,
)
from repro.bench import banner, format_table


@pytest.fixture(scope="module")
def archive():
    return generate_training_archive(n_days=16, steps_per_day=4, ncol_per_step=16, nlev=10)


@pytest.fixture(scope="module")
def suite(archive):
    return AIPhysicsSuite.train(archive, epochs=40, width=32, lr=3e-3)


def test_published_architecture():
    """The full-size tendency CNN: 11 conv layers, ~5e5 parameters."""
    net = build_tendency_cnn()  # paper-size: width 128, 30 levels
    assert net.n_conv_layers() == 12  # 11 + the 1x1 projection head
    assert net.n_params == pytest.approx(5.0e5, rel=0.05)
    mlp = build_radiation_mlp()
    assert mlp.n_params > 0


def test_training_protocol_matches_paper():
    """80 days (20/season), 7:1 split, 3 random validation steps/day."""
    split = split_by_days(80, steps_per_day=8)
    n_test_days = len(split.test) // 8
    assert (80 - n_test_days) / n_test_days == pytest.approx(7.0, rel=0.05)


def test_ai_physics_report(archive, suite, emit_report):
    idx = np.arange(len(archive["x_radiation"]))
    skill = suite.skill(archive, idx)

    # Wall-clock per column: conventional vs AI suite inference.
    cols = synthetic_columns(512, 10, season=1, step=2)
    conventional = ConventionalPhysics()

    def timed(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(cols, 120.0)
            best = min(best, time.perf_counter() - t0)
        return best

    t_conv = timed(conventional.compute)
    t_ai = timed(suite.compute)

    rows = [
        ("tendency CNN R^2", skill["tendency"], None),
        ("radiation MLP R^2", skill["radiation"], None),
        ("conventional suite [ms/512 col]", t_conv * 1e3, None),
        ("AI suite [ms/512 col]", t_ai * 1e3, None),
        ("AI : conventional time ratio", t_ai / t_conv, None),
    ]
    emit_report(
        "ai_physics",
        "\n".join([
            banner("§5.2.1 — AI physics suite: skill and cost"),
            format_table(["metric", "value", "paper"], rows),
            "\nnotes: test-size nets (width 32, 10 levels); the full-size "
            "CNN (width 128) hits the paper's ~5e5 parameters exactly "
            "(test_published_architecture).  The AI suite's cost is matmul-"
            "dominated; on tensor hardware (the paper's case) the gap "
            "widens by the matmul/branchy-code throughput ratio.",
        ]),
    )
    assert skill["radiation"] > 0.5
    assert skill["tendency"] > 0.2


def test_resolution_adaptive(suite):
    """Trained at one resolution, runs on any column batch/level count."""
    for ncol, nlev in ((8, 10), (64, 10), (16, 10)):
        cols = synthetic_columns(ncol, nlev, season=0, step=0)
        tend = suite.compute(cols, 120.0)
        assert tend.dt.shape == (ncol, nlev)


def test_benchmark_ai_inference(benchmark, suite):
    cols = synthetic_columns(256, 10, season=2, step=1)
    result = benchmark(suite.compute, cols, 120.0)
    assert np.isfinite(result.dt).all()


def test_benchmark_conventional_suite(benchmark):
    cols = synthetic_columns(256, 10, season=2, step=1)
    physics = ConventionalPhysics()
    result = benchmark(physics.compute, cols, 120.0)
    assert np.isfinite(result.dt).all()
