"""Fig. 1: snapshot fields from standalone and coupled simulations.

(a) precipitation + sea-surface kinetic energy from the coupled model,
(b) total cloud fraction from the atmosphere-only run,
(c) sea-surface speed from the ocean-only run.
Laptop-scale grids; the report gives the field statistics the figure's
color scales encode.
"""

import numpy as np
import pytest

from repro.atm import GristConfig, GristModel
from repro.bench import banner, format_table
from repro.esm import (
    AP3ESM,
    AP3ESMConfig,
    atm_snapshot,
    surface_kinetic_energy,
    surface_speed,
)
from repro.ocn import LicomConfig, LicomModel


@pytest.fixture(scope="module")
def coupled_run():
    model = AP3ESM(AP3ESMConfig(atm_level=3, ocn_nlon=64, ocn_nlat=48, ocn_levels=8))
    model.init()
    model.run_couplings(24)
    return model


@pytest.fixture(scope="module")
def atm_only():
    m = GristModel(GristConfig(level=3))
    m.init()
    m.run(24)
    return m


@pytest.fixture(scope="module")
def ocn_only():
    m = LicomModel(LicomConfig(nlon=96, nlat=64, n_levels=10))
    m.init()
    m.import_state({
        "taux": np.where(m.metrics.mask_c, 0.08 * np.cos(3 * m.grid.lat), 0.0),
        "heat_flux": np.where(m.metrics.mask_c, 40.0 * np.cos(m.grid.lat), 0.0),
    })
    m.run(50)
    return m


def _stats(name, field, mask=None):
    vals = field[mask] if mask is not None else field[np.isfinite(field)]
    return (name, float(np.nanmin(vals)), float(np.nanmean(vals)), float(np.nanmax(vals)))


def test_fig1_report(coupled_run, atm_only, ocn_only, emit_report):
    rows = []
    snap = atm_snapshot(coupled_run.atm)
    rows.append(_stats("(a) precip [mm/day]", snap["precip"] * 86400.0))
    ke = surface_kinetic_energy(coupled_run.ocn)
    rows.append(_stats("(a) sfc KE [m2/s2]", ke))
    snap_b = atm_snapshot(atm_only)
    rows.append(_stats("(b) cloud fraction", snap_b["cloud_fraction"]))
    rows.append(_stats("(c) sfc speed [m/s]", surface_speed(ocn_only)))
    emit_report(
        "fig1_snapshots",
        "\n".join([
            banner("Fig. 1 — snapshot fields (laptop-scale reproduction)"),
            format_table(["field", "min", "mean", "max"], rows),
        ]),
    )


def test_precip_field_physical(coupled_run):
    precip = atm_snapshot(coupled_run.atm)["precip"] * 86400.0
    assert np.all(precip >= 0)
    assert 0.0 < precip.mean() < 50.0  # global-mean precip ~ a few mm/day


def test_cloud_fraction_bounded(atm_only):
    cf = atm_snapshot(atm_only)["cloud_fraction"]
    assert np.all((cf >= 0) & (cf <= 1))
    assert 0.0 < cf.mean() < 1.0


def test_surface_speed_wind_driven(ocn_only):
    speed = surface_speed(ocn_only)
    finite = speed[np.isfinite(speed)]
    assert finite.max() > 0.005  # the gyres spun up
    assert finite.max() < 5.0


def test_kinetic_energy_log_range(coupled_run):
    """Fig. 1 uses a logarithmic KE colorbar: the field must span at least
    an order of magnitude (laptop grids resolve no mesoscale eddies, so we
    require one decade between the 10th percentile and the maximum where
    the paper's 1-km field spans ~6)."""
    ke = surface_kinetic_energy(coupled_run.ocn)
    finite = ke[np.isfinite(ke) & (ke > 0)]
    assert finite.max() / max(np.percentile(finite, 10), 1e-30) > 10.0


def test_benchmark_coupled_step(benchmark, coupled_run):
    benchmark(coupled_run.step_coupling)
