"""§5.3: performance portability (Kokkos + SWGOMP).

Measures the portability layer's contract: the same kernels produce
bit-identical results on every execution space (Serial, HostThreads,
CPECluster, GPUDevice — and ProcPool, the backend that really executes
on separate host cores); the hash-registry launch path (the Sunway TMP
workaround) matches direct dispatch exactly; the hybrid host-device split
equalizes modeled finish times; and the modeled per-space kernel costs
reproduce the MPE-vs-CPE ordering that drives Table 2.

Emits ``BENCH_pp.json`` with the *measured* procs-vs-serial wall-time
speedup (kind ``speedup``: gated >= 1x by the CI perf gate on multi-core
runners, informational on single-core ones).
"""

import multiprocessing
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import PerfBaseline, banner, compare_baselines, emit, format_table
from repro.pp import (
    BoundKernel,
    CPECluster,
    GPUDevice,
    HostThreads,
    HybridDispatcher,
    KernelRegistry,
    MDRangePolicy,
    ProcPool,
    Serial,
    kernel_hash,
    parallel_for,
    parallel_reduce,
    target,
)

SPACES = {
    "Serial (MPE)": Serial(),
    "HostThreads": HostThreads(8),
    "CPECluster": CPECluster(64),
    "GPUDevice": GPUDevice(4096),
}

N = 200_000


def _stencil(out, x, idx):
    left = x[np.maximum(idx - 1, 0)]
    right = x[np.minimum(idx + 1, len(x) - 1)]
    out[idx] = 0.25 * left + 0.5 * x[idx] + 0.25 * right


@pytest.fixture(scope="module")
def field():
    return np.random.default_rng(0).standard_normal(N)


def test_portability_report(field, emit_report):
    results = {}
    rows = []
    flops = 4.0 * N
    for name, space in SPACES.items():
        out = np.zeros(N)
        parallel_for(space, N, lambda idx: _stencil(out, field, idx))
        results[name] = out
        rows.append((name, space.lanes, f"{space.modeled_time(flops) * 1e6:.2f}"))
    reference = results["Serial (MPE)"]
    identical = all(np.array_equal(v, reference) for v in results.values())

    hybrid = HybridDispatcher(Serial(), CPECluster(64)).rebalanced()
    rows.append(("Hybrid MPE+CPE", "1+64",
                 f"{hybrid.modeled_time(4.0, N) * 1e6:.2f}"))

    emit_report(
        "perf_portability",
        "\n".join([
            banner("§5.3 — performance portability across execution spaces"),
            format_table(["execution space", "lanes", "modeled kernel time [us]"], rows),
            f"\nbit-identical across all spaces: {identical}",
            f"hybrid device fraction (balanced): {hybrid.device_fraction:.4f}",
        ]),
    )
    assert identical


def test_all_spaces_bit_identical(field):
    outputs = []
    for space in SPACES.values():
        out = np.zeros(N)
        parallel_for(space, N, lambda idx: _stencil(out, field, idx))
        outputs.append(out)
    for out in outputs[1:]:
        assert np.array_equal(out, outputs[0])


def test_reduction_deterministic_across_spaces(field):
    vals = [
        parallel_reduce(space, N, lambda idx: field[idx].sum())
        for space in (Serial(), Serial())
    ]
    assert vals[0] == vals[1]


def test_hash_registry_launch_matches_direct(field):
    """The Sunway workaround: launch-by-hash == direct dispatch, bitwise."""
    registry = KernelRegistry()

    def saxpy(idx, y, a, x):
        y[idx] += a * x[idx]

    handle = registry.register(saxpy)
    y_direct = np.zeros(N)
    parallel_for(CPECluster(64), N, lambda idx: saxpy(idx, y_direct, 2.0, field))
    y_hash = np.zeros(N)
    registry.launch(CPECluster(64), handle, N, y_hash, 2.0, field)
    assert np.array_equal(y_direct, y_hash)
    assert kernel_hash(saxpy) == handle


def test_swgomp_offload_matches_host(field):
    @target(schedule="static")
    def relax(u):
        u *= 0.5

    host = field.copy().reshape(-1, 1)
    dev = field.copy().reshape(-1, 1)
    relax(host)
    relax.offload(CPECluster(64), dev)
    assert np.array_equal(host, dev)


def test_cpe_cluster_fastest_modeled():
    """The modeled per-space ordering behind Table 2's MPE-vs-CPE gap."""
    flops = 1e9
    t = {name: space.modeled_time(flops) for name, space in SPACES.items()}
    assert t["CPECluster"] < t["HostThreads"] < t["Serial (MPE)"]
    ratio = t["Serial (MPE)"] / t["CPECluster"]
    assert ratio > 100  # the raw compute gap the 84-184x end-to-end rests on


def test_mdrange_tiling_covers(field):
    policy = MDRangePolicy(extents=(100, 50), tile=(10, 25))
    hits = np.zeros((100, 50))
    parallel_for(Serial(), policy, lambda a, b: hits.__setitem__(np.ix_(a, b), 1.0))
    assert hits.all()


@pytest.mark.parametrize("name,space", list(SPACES.items()), ids=list(SPACES))
def test_benchmark_kernel_per_space(benchmark, field, name, space):
    out = np.zeros(N)
    benchmark(parallel_for, space, N, lambda idx: _stencil(out, field, idx))


# -- the real backend: measured speedup + the JSON perf baseline -------------

BENCH_JSON = "BENCH_pp.json"
BASELINE_DIR = Path(__file__).parent / "baselines"
HEAVY_N = 300_000


def _heavy(idx, out, x):
    """Compute-bound kernel: enough transcendental work per element that
    fanning chunks across cores beats the dispatch overhead."""
    v = x[idx].copy()
    acc = np.zeros_like(v)
    for _ in range(12):
        acc += np.sin(v) * np.cos(v) + np.sqrt(np.abs(v) + 1.0)
        v = v * 0.99 + 0.01
    out[idx] = acc


def _time_heavy(space, x, reps=3):
    """Best-of-reps wall time of the heavy kernel on ``space``."""
    out = np.zeros(HEAVY_N)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        parallel_for(space, HEAVY_N, BoundKernel(_heavy, (out, x)))
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_procpool_bitwise_and_measured_speedup(field, emit_report):
    """ProcPool must match Serial bit-for-bit; the measured speedup is
    reported (and >= 1x is enforced by the perf gate on multi-core CI)."""
    x = np.random.default_rng(1).standard_normal(HEAVY_N)
    pool = ProcPool()  # all cores
    try:
        t_serial, out_serial = _time_heavy(Serial(), x)
        t_procs, out_procs = _time_heavy(pool, x)
        stats = pool.runtime.stats
    finally:
        pool.runtime.shutdown()
    assert np.array_equal(out_serial, out_procs)
    if pool.lanes > 1:
        # A >1-wide pool cuts >1 chunk per launch, so nothing falls back;
        # a 1-core host has a 1-lane pool whose single chunk correctly
        # stays in-process.
        assert stats.fallbacks == 0
    cores = multiprocessing.cpu_count()
    speedup = t_serial / t_procs
    emit_report(
        "pp_procpool_speedup",
        "\n".join([
            banner("ProcPool — real multi-core execution (shared memory)"),
            format_table(
                ["backend", "workers", "wall [ms]", "speedup"],
                [("Serial", 1, f"{t_serial * 1e3:.1f}", "1.00"),
                 ("ProcPool", pool.lanes, f"{t_procs * 1e3:.1f}",
                  f"{speedup:.2f}")],
            ),
            f"\nhost cores: {cores}",
            "bitwise identical to serial: True",
            f"pool dispatches: {stats.dispatches}, fallbacks: {stats.fallbacks}",
        ]),
    )
    if cores > 1:
        assert speedup > 1.0, f"procs slower than serial on {cores} cores"


def _bench_document(tmp_path):
    doc = PerfBaseline(suite="pp")
    x = np.random.default_rng(1).standard_normal(HEAVY_N)

    # Deterministic dispatch arithmetic with a FIXED pool width (gated):
    # a 2-worker pool sees the same chunking on every machine.
    pool2 = ProcPool(2)
    try:
        out_p = np.zeros(HEAVY_N)
        parallel_for(pool2, HEAVY_N, BoundKernel(_heavy, (out_p, x)))
        st = pool2.runtime.stats
        doc.record("procs.dispatches", st.dispatches)
        doc.record("procs.tasks", st.tasks)
        doc.record("procs.fallbacks", st.fallbacks)
    finally:
        pool2.runtime.shutdown()
    out_s = np.zeros(HEAVY_N)
    parallel_for(Serial(), HEAVY_N, BoundKernel(_heavy, (out_s, x)))
    doc.record("procs.bitwise_identical", float(np.array_equal(out_s, out_p)))

    # Modeled per-space cost ordering (gated, deterministic model output).
    flops = 4.0 * N
    for label, space in SPACES.items():
        key = label.split(" ")[0].lower().replace("(", "")
        doc.record(f"model.{key}_kernel_s", space.modeled_time(flops),
                   kind="model", unit="s")

    # Measured speedup with all cores (kind=speedup: the perf gate
    # enforces >= 1x iff host.cores > 1).  host.cores is machine-dependent
    # so it rides along ungated (kind=wall == informational).
    t_serial, _ = _time_heavy(Serial(), x)
    pool = ProcPool()
    try:
        t_procs, _ = _time_heavy(pool, x)
    finally:
        pool.runtime.shutdown()
    doc.record("host.cores", multiprocessing.cpu_count(), kind="wall")
    doc.record("wall.heavy_serial_ms", t_serial * 1e3, kind="wall", unit="ms")
    doc.record("wall.heavy_procs_ms", t_procs * 1e3, kind="wall", unit="ms")
    doc.record("speedup.procs_vs_serial", t_serial / t_procs, kind="speedup",
               unit="x")
    return doc


def test_emit_bench_pp_json(tmp_path, report_dir):
    """Emit BENCH_pp.json — the document the CI perf gate compares
    against benchmarks/baselines/BENCH_pp.json."""
    doc = _bench_document(tmp_path)
    emit(doc, report_dir)


def test_gate_against_committed_baseline(tmp_path):
    """The acceptance check the CI job runs: the fresh document must pass
    the 15 % gate against the committed baseline (speedup metrics gate
    only the 1x floor, and only on multi-core hosts)."""
    baseline_path = BASELINE_DIR / BENCH_JSON
    if not baseline_path.exists():
        pytest.skip("no committed baseline yet")
    doc = _bench_document(tmp_path)
    comparison = compare_baselines(
        doc, PerfBaseline.from_file(baseline_path), tolerance=0.15
    )
    print("\n" + comparison.report())
    assert comparison.ok, comparison.report()
