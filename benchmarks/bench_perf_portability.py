"""§5.3: performance portability (Kokkos + SWGOMP).

Measures the portability layer's contract: the same kernels produce
bit-identical results on every execution space (Serial, HostThreads,
CPECluster, GPUDevice); the hash-registry launch path (the Sunway TMP
workaround) matches direct dispatch exactly; the hybrid host-device split
equalizes modeled finish times; and the modeled per-space kernel costs
reproduce the MPE-vs-CPE ordering that drives Table 2.
"""

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.pp import (
    CPECluster,
    GPUDevice,
    HostThreads,
    HybridDispatcher,
    KernelRegistry,
    MDRangePolicy,
    Serial,
    kernel_hash,
    parallel_for,
    parallel_reduce,
    target,
)

SPACES = {
    "Serial (MPE)": Serial(),
    "HostThreads": HostThreads(8),
    "CPECluster": CPECluster(64),
    "GPUDevice": GPUDevice(4096),
}

N = 200_000


def _stencil(out, x, idx):
    left = x[np.maximum(idx - 1, 0)]
    right = x[np.minimum(idx + 1, len(x) - 1)]
    out[idx] = 0.25 * left + 0.5 * x[idx] + 0.25 * right


@pytest.fixture(scope="module")
def field():
    return np.random.default_rng(0).standard_normal(N)


def test_portability_report(field, emit_report):
    results = {}
    rows = []
    flops = 4.0 * N
    for name, space in SPACES.items():
        out = np.zeros(N)
        parallel_for(space, N, lambda idx: _stencil(out, field, idx))
        results[name] = out
        rows.append((name, space.lanes, f"{space.modeled_time(flops) * 1e6:.2f}"))
    reference = results["Serial (MPE)"]
    identical = all(np.array_equal(v, reference) for v in results.values())

    hybrid = HybridDispatcher(Serial(), CPECluster(64)).rebalanced()
    rows.append(("Hybrid MPE+CPE", "1+64",
                 f"{hybrid.modeled_time(4.0, N) * 1e6:.2f}"))

    emit_report(
        "perf_portability",
        "\n".join([
            banner("§5.3 — performance portability across execution spaces"),
            format_table(["execution space", "lanes", "modeled kernel time [us]"], rows),
            f"\nbit-identical across all spaces: {identical}",
            f"hybrid device fraction (balanced): {hybrid.device_fraction:.4f}",
        ]),
    )
    assert identical


def test_all_spaces_bit_identical(field):
    outputs = []
    for space in SPACES.values():
        out = np.zeros(N)
        parallel_for(space, N, lambda idx: _stencil(out, field, idx))
        outputs.append(out)
    for out in outputs[1:]:
        assert np.array_equal(out, outputs[0])


def test_reduction_deterministic_across_spaces(field):
    vals = [
        parallel_reduce(space, N, lambda idx: field[idx].sum())
        for space in (Serial(), Serial())
    ]
    assert vals[0] == vals[1]


def test_hash_registry_launch_matches_direct(field):
    """The Sunway workaround: launch-by-hash == direct dispatch, bitwise."""
    registry = KernelRegistry()

    def saxpy(idx, y, a, x):
        y[idx] += a * x[idx]

    handle = registry.register(saxpy)
    y_direct = np.zeros(N)
    parallel_for(CPECluster(64), N, lambda idx: saxpy(idx, y_direct, 2.0, field))
    y_hash = np.zeros(N)
    registry.launch(CPECluster(64), handle, N, y_hash, 2.0, field)
    assert np.array_equal(y_direct, y_hash)
    assert kernel_hash(saxpy) == handle


def test_swgomp_offload_matches_host(field):
    @target(schedule="static")
    def relax(u):
        u *= 0.5

    host = field.copy().reshape(-1, 1)
    dev = field.copy().reshape(-1, 1)
    relax(host)
    relax.offload(CPECluster(64), dev)
    assert np.array_equal(host, dev)


def test_cpe_cluster_fastest_modeled():
    """The modeled per-space ordering behind Table 2's MPE-vs-CPE gap."""
    flops = 1e9
    t = {name: space.modeled_time(flops) for name, space in SPACES.items()}
    assert t["CPECluster"] < t["HostThreads"] < t["Serial (MPE)"]
    ratio = t["Serial (MPE)"] / t["CPECluster"]
    assert ratio > 100  # the raw compute gap the 84-184x end-to-end rests on


def test_mdrange_tiling_covers(field):
    policy = MDRangePolicy(extents=(100, 50), tile=(10, 25))
    hits = np.zeros((100, 50))
    parallel_for(Serial(), policy, lambda a, b: hits.__setitem__(np.ix_(a, b), 1.0))
    assert hits.all()


@pytest.mark.parametrize("name,space", list(SPACES.items()), ids=list(SPACES))
def test_benchmark_kernel_per_space(benchmark, field, name, space):
    out = np.zeros(N)
    benchmark(parallel_for, space, N, lambda idx: _stencil(out, field, idx))
