"""Ensemble runtime: cross-member batched AI physics.

Measures the multi-instance session layer's centerpiece: stacking every
member's physics columns into ONE suite call (one GEMM serves the
fleet) instead of N per-member calls.  The contract under test is
two-fold — the batched result must be *bitwise identical* to per-member
inference, and the call count must collapse by exactly the member count.

Emits ``BENCH_ensemble.json``: the deterministic call/column accounting
is gated by the CI perf gate; wall times and the batched-vs-sequential
speedup ride along informationally (python-overhead amortization is
machine-dependent and noisy at this miniature problem size).
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.atm import AIPhysicsSuite, generate_training_archive, synthetic_columns
from repro.bench import PerfBaseline, banner, compare_baselines, emit, format_table
from repro.esm import AP3ESMConfig, BatchedPhysicsDriver, EnsembleConfig, EnsembleRun

BENCH_JSON = "BENCH_ensemble.json"
BASELINE_DIR = Path(__file__).parent / "baselines"

MEMBERS = 8
NCOL = 48
NLEV = 16
ROUNDS = 3


@pytest.fixture(scope="module")
def suite():
    """A tiny trained AI suite (small nets keep the benchmark fast; the
    batching contract is size-independent)."""
    archive = generate_training_archive(
        n_days=8, steps_per_day=4, ncol_per_step=8, nlev=NLEV
    )
    return AIPhysicsSuite.train(archive, epochs=2, width=16, lr=3e-3)


@pytest.fixture(scope="module")
def member_columns():
    return [
        synthetic_columns(NCOL, NLEV, season=k % 4, step=k, seed=k)
        for k in range(MEMBERS)
    ]


def _time_driver(driver, cols, rounds=ROUNDS):
    """Best-of-rounds wall time of one fleet physics step."""
    best, tends = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        tends = driver.compute(cols, 120.0)
        best = min(best, time.perf_counter() - t0)
    return best, tends


def test_batched_bitwise_identical_to_sequential(suite, member_columns):
    """The acceptance contract: one stacked call == N member calls,
    bit for bit, for every tendency and flux field."""
    batched = BatchedPhysicsDriver([suite] * MEMBERS, batch=True)
    sequential = BatchedPhysicsDriver([suite] * MEMBERS, batch=False)
    tb = batched.compute(member_columns, 120.0)
    ts = sequential.compute(member_columns, 120.0)
    for k, (b, s) in enumerate(zip(tb, ts)):
        for fld in ("du", "dv", "dt", "dq", "gsw", "glw", "precip",
                    "cloud_fraction", "shflx", "lhflx"):
            assert np.array_equal(getattr(b, fld), getattr(s, fld)), \
                f"member {k} field {fld} diverged"
    assert batched.fleet_calls == 1
    assert batched.columns_total == MEMBERS * NCOL
    assert sequential.member_calls == MEMBERS


def test_batched_report(suite, member_columns, emit_report):
    batched = BatchedPhysicsDriver([suite] * MEMBERS, batch=True)
    sequential = BatchedPhysicsDriver([suite] * MEMBERS, batch=False)
    t_batch, _ = _time_driver(batched, member_columns)
    t_seq, _ = _time_driver(sequential, member_columns)
    emit_report(
        "ensemble_batched_physics",
        "\n".join([
            banner("Ensemble — cross-member batched AI physics"),
            format_table(
                ["mode", "suite calls/step", "columns/call", "wall [ms]"],
                [("sequential", MEMBERS, NCOL, f"{t_seq * 1e3:.2f}"),
                 ("batched", 1, MEMBERS * NCOL, f"{t_batch * 1e3:.2f}")],
            ),
            f"\nmembers: {MEMBERS}, columns/member: {NCOL}, levels: {NLEV}",
            f"call reduction: {MEMBERS}x",
            f"batched speedup: {t_seq / t_batch:.2f}x (informational)",
            "bitwise identical to per-member inference: True",
        ]),
    )


def _bench_document():
    doc = PerfBaseline(suite="ensemble")
    cols = [
        synthetic_columns(NCOL, NLEV, season=k % 4, step=k, seed=k)
        for k in range(MEMBERS)
    ]
    archive = generate_training_archive(
        n_days=8, steps_per_day=4, ncol_per_step=8, nlev=NLEV
    )
    ai = AIPhysicsSuite.train(archive, epochs=2, width=16, lr=3e-3)

    # Deterministic batching arithmetic (gated): the whole point of the
    # driver is that these counts are machine-independent.
    batched = BatchedPhysicsDriver([ai] * MEMBERS, batch=True)
    sequential = BatchedPhysicsDriver([ai] * MEMBERS, batch=False)
    tb = batched.compute(cols, 120.0)
    ts = sequential.compute(cols, 120.0)
    bitwise = all(
        np.array_equal(b.dt, s.dt) and np.array_equal(b.gsw, s.gsw)
        for b, s in zip(tb, ts)
    )
    doc.record("batched.members", MEMBERS)
    doc.record("batched.fleet_calls_per_step", batched.fleet_calls)
    doc.record("batched.columns_per_call", batched.columns_total)
    doc.record("batched.call_reduction", sequential.member_calls / batched.fleet_calls)
    doc.record("batched.bitwise_identical", float(bitwise))

    # End-to-end session accounting on a miniature coupled ensemble
    # (gated): N members, lockstep, shared infrastructure.
    small = dict(atm_level=2, ocn_nlon=24, ocn_nlat=16, ocn_levels=4)
    ens = EnsembleRun(EnsembleConfig(
        base=AP3ESMConfig(**small),
        members=3, batch_physics=True,
    ))
    ens.init()
    t0 = time.perf_counter()
    ens.run_couplings(2)
    t_plain = time.perf_counter() - t0
    summary = ens.summary()
    bp = summary["batched_physics"]
    doc.record("session.members", len(ens.members))
    doc.record("session.fleet_steps", bp["fleet_steps"])
    doc.record("session.fleet_calls", bp["fleet_calls"])
    doc.record("session.columns_total", bp["columns_total"])
    plain_state = [np.asarray(m.atm.t_col).copy() for m in ens.members]
    ens.finalize()

    # Fleet-supervisor no-fault contract (gated): an armed supervisor
    # with nothing to do must be invisible — zero events, and every
    # member bitwise-identical to the unsupervised fleet above.  The
    # per-coupling wall overhead rides along informationally.
    from repro.resilience import ResilienceConfig

    armed = EnsembleRun(EnsembleConfig(
        base=AP3ESMConfig(resilience=ResilienceConfig(
            enabled=True, guard_physics=False, member_policy="quarantine",
        ), **small),
        members=3, batch_physics=True,
    ))
    armed.init()
    t0 = time.perf_counter()
    armed.run_couplings(2)
    t_armed = time.perf_counter() - t0
    supervised_bitwise = all(
        np.array_equal(np.asarray(m.atm.t_col), ref)
        for m, ref in zip(armed.members, plain_state)
    )
    doc.record("supervisor.armed_events", len(armed.supervisor.events))
    doc.record("supervisor.armed_faults_injected",
               armed.supervisor.faults_injected)
    doc.record("supervisor.fleet_alive", armed.supervisor.n_alive)
    doc.record("supervisor.armed_bitwise_identical", float(supervised_bitwise))
    doc.record("wall.supervisor_overhead", t_armed / t_plain, kind="wall",
               unit="x")
    armed.finalize()

    # Wall/speedup ride along informationally: the python-overhead
    # amortization is real but machine- and load-dependent at this size
    # (the speedup metric is kind="wall", so it never gates).
    t_batch, _ = _time_driver(batched, cols)
    t_seq, _ = _time_driver(sequential, cols)
    doc.record("wall.fleet_step_batched_ms", t_batch * 1e3, kind="wall", unit="ms")
    doc.record("wall.fleet_step_sequential_ms", t_seq * 1e3, kind="wall", unit="ms")
    doc.record("speedup.batched_vs_sequential", t_seq / t_batch, kind="wall",
               unit="x")
    return doc


def test_emit_bench_ensemble_json(report_dir):
    """Emit BENCH_ensemble.json — the document the CI perf gate compares
    against benchmarks/baselines/BENCH_ensemble.json."""
    doc = _bench_document()
    emit(doc, report_dir)


def test_gate_against_committed_baseline():
    """The acceptance check the CI job runs: the fresh document must pass
    the 15 % gate against the committed baseline (the batching counts are
    deterministic, so any drift is a real behavior change)."""
    baseline_path = BASELINE_DIR / BENCH_JSON
    if not baseline_path.exists():
        pytest.skip("no committed baseline yet")
    doc = _bench_document()
    comparison = compare_baselines(
        doc, PerfBaseline.from_file(baseline_path), tolerance=0.15
    )
    print("\n" + comparison.report())
    assert comparison.ok, comparison.report()
