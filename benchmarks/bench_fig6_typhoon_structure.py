"""Fig. 6: typhoon structure at two coupled resolutions.

The paper contrasts AP3ESM 3v2 vs 25v10 at +2 days: the high-resolution
run "produces a more compact typhoon eye and resolves significantly finer
details", and its "sea surface Ro field ... resolve[s] a wealth of
fine-scale patterns", while the low-resolution run only shows the
localized response.  Laptop equivalents: the same idealized vortex run
through two coupled configurations (icosahedral level 4 + 96x64 ocean vs
level 3 + 48x32), compared on eye radius, peak wind, and the fine-scale
variance of the surface Rossby number.
"""

import math

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.esm import AP3ESM, AP3ESMConfig, HollandVortex, TyphoonExperiment

VORTEX = HollandVortex(
    center_lon=math.radians(150.0), center_lat=math.radians(20.0),
    v_max=40.0, r_max=5.0e5,
)
HOURS = 12


def _run(atm_level, nlon, nlat):
    model = AP3ESM(AP3ESMConfig(atm_level=atm_level, ocn_nlon=nlon, ocn_nlat=nlat,
                                ocn_levels=8))
    model.init()
    exp = TyphoonExperiment(model, VORTEX)
    exp.run(HOURS)
    return exp


@pytest.fixture(scope="module")
def high_res():
    return _run(4, 96, 64)


@pytest.fixture(scope="module")
def low_res():
    return _run(3, 48, 32)


def test_fig6_report(high_res, low_res, emit_report):
    rows = []
    for label, exp in (("3v2-like (hi)", high_res), ("25v10-like (lo)", low_res)):
        em = exp.eye_metrics()
        spacing = exp.model.atm.grid.mean_cell_spacing_km
        rows.append((
            label, f"{spacing:.0f} km", em["eye_radius_km"], em["max_wind"],
            f"{em['wind_grad_rms']:.2e}", f"{em['rossby_p95']:.2e}",
        ))
    emit_report(
        "fig6_typhoon_structure",
        "\n".join([
            banner(f"Fig. 6 — typhoon structure at +{HOURS} h, two resolutions"),
            format_table(
                ["config", "atm spacing", "eye radius [km]", "max wind [m/s]",
                 "wind grad RMS", "Ro p95"],
                rows,
            ),
            "\npaper: the high-resolution pair shows a more compact eye and "
            "far richer fine-scale structure; here the eye radius, the wind "
            "gradient sharpness, and intensity carry the comparison (the "
            "ocean Ro response at +12 h on laptop grids is reported but "
            "noise-dominated).",
        ]),
    )


def test_high_res_has_more_compact_eye(high_res, low_res):
    hi = high_res.eye_metrics()["eye_radius_km"]
    lo = low_res.eye_metrics()["eye_radius_km"]
    assert hi < lo


def test_high_res_holds_stronger_winds(high_res, low_res):
    hi = high_res.eye_metrics()["max_wind"]
    lo = low_res.eye_metrics()["max_wind"]
    assert hi > lo


def test_high_res_sharper_wind_field(high_res, low_res):
    """'resolves significantly finer details in the spatial pattern of the
    wind field': the wind-gradient RMS near the storm must be larger."""
    hi = high_res.eye_metrics()["wind_grad_rms"]
    lo = low_res.eye_metrics()["wind_grad_rms"]
    assert hi > lo


def test_ocean_rossby_response_exists(high_res):
    """The coupled ocean shows a Rossby-number response near the storm."""
    assert high_res.eye_metrics()["rossby_p95"] > 0


def test_both_capture_the_vortex(high_res, low_res):
    for exp in (high_res, low_res):
        track = exp.tracker.track()
        assert track[0, 3] > 15.0  # winds well above the ~10 m/s background


def test_benchmark_structure_snapshot(benchmark, high_res):
    snap = benchmark(high_res.structure_snapshot)
    assert "rossby" in snap
