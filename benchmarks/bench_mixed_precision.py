"""§5.2.3: group-wise scaling FP64/FP32 mixed precision.

Reproduces the paper's acceptance experiment: run the ocean model twice —
FP64 reference vs mixed precision (the prognostic state round-trips
through group-scaled FP32 storage every step) — for 30 simulated days,
then compute the area-weighted RMSD of daily (T, S, SSH) data against the
paper's published values (0.018 C, 0.0098 psu, 0.0005 m).  The GRIST-side
acceptance (relative L2 of surface pressure/vorticity < 5 %) runs on the
shallow-water dycore.
"""

import numpy as np
import pytest

from repro.atm import ShallowWaterDycore, williamson_tc2
from repro.bench import banner, format_table
from repro.grids import IcosahedralGrid, trsk
from repro.ocn import LicomConfig, LicomModel
from repro.precision import (
    GRIST_REL_L2_THRESHOLD,
    GroupScaled32,
    Precision,
    PrecisionPolicy,
    evaluate_licom_acceptance,
    relative_l2,
)

DAYS = 30


def _run_ocean(mixed: bool):
    """One 30-day ocean run; returns daily (T, S, SSH) surface snapshots."""
    model = LicomModel(LicomConfig(nlon=48, nlat=32, n_levels=8))
    model.init()
    model.import_state({
        "taux": np.where(model.metrics.mask_c, 0.05 * np.cos(3 * model.grid.lat), 0.0),
        "heat_flux": np.where(model.metrics.mask_c, 30.0 * np.cos(model.grid.lat), 0.0),
    })
    policy = PrecisionPolicy({
        "t": Precision.FP32_GROUPSCALED,
        "s": Precision.FP32_GROUPSCALED,
        "eta": Precision.FP32_GROUPSCALED,
        "u": Precision.FP32,
        "v": Precision.FP32,
    })
    steps_per_day = max(1, int(round(86400.0 / model.dt_baroclinic)))
    daily_t, daily_s, daily_h = [], [], []
    for _ in range(DAYS):
        model.run(steps_per_day)
        if mixed:
            state = policy.apply({
                "t": model.t, "s": model.s, "eta": model.bt.eta,
                "u": model.u, "v": model.v,
            })
            model.t, model.s = state["t"], state["s"]
            model.bt.eta = state["eta"]
            model.u, model.v = state["u"], state["v"]
        daily_t.append(model.t[0].copy())
        daily_s.append(model.s[0].copy())
        daily_h.append(model.bt.eta.copy())
    return model, daily_t, daily_s, daily_h


@pytest.fixture(scope="module")
def runs():
    ref = _run_ocean(mixed=False)
    mix = _run_ocean(mixed=True)
    return ref, mix


@pytest.fixture(scope="module")
def licom_reports(runs):
    (ref_model, rt, rs, rh), (_, mt, ms, mh) = runs
    return evaluate_licom_acceptance(
        mt, ms, mh, rt, rs, rh, ref_model.metrics.area, ref_model.mask3d[0]
    )


@pytest.fixture(scope="module")
def grist_l2():
    """GRIST acceptance: 5-day dycore run FP64 vs group-scaled state."""
    grid = IcosahedralGrid.build(3)
    dycore = ShallowWaterDycore(grid, diffusion=1e5)

    def run(mixed: bool):
        state = williamson_tc2(grid)
        dt = dycore.max_stable_dt(state, cfl=0.4)
        steps_per_day = int(86400.0 / dt) + 1
        for _ in range(5):
            for _ in range(steps_per_day):
                state = dycore.step_rk4(state, dt)
            if mixed:
                state.h = GroupScaled32.encode(state.h).decode()
                state.u = GroupScaled32.encode(state.u).decode()
        return state

    ref = run(False)
    mix = run(True)
    l2_h = relative_l2(mix.h, ref.h)  # surface-pressure proxy
    l2_zeta = relative_l2(
        trsk.curl(grid, mix.u) + 1e-10, trsk.curl(grid, ref.u) + 1e-10
    )
    return l2_h, l2_zeta


def test_mixed_precision_report(licom_reports, grist_l2, emit_report):
    l2_h, l2_zeta = grist_l2
    rows = [
        ("LICOM T RMSD [C]", licom_reports["temperature"].measured, 0.018),
        ("LICOM S RMSD [psu]", licom_reports["salinity"].measured, 0.0098),
        ("LICOM SSH RMSD [m]", licom_reports["ssh"].measured, 0.0005),
        ("GRIST rel-L2 (height)", l2_h, GRIST_REL_L2_THRESHOLD),
        ("GRIST rel-L2 (vorticity)", l2_zeta, GRIST_REL_L2_THRESHOLD),
    ]
    emit_report(
        "mixed_precision",
        "\n".join([
            banner(f"§5.2.3 — mixed precision: {DAYS}-day RMSD vs FP64 (paper thresholds)"),
            format_table(["metric", "measured", "paper threshold"],
                         rows, floatfmt="{:.3e}"),
            "\nall metrics must sit at or below the paper's published "
            "values (they do: group scaling keeps per-group relative error "
            "at FP32 round-off).",
        ]),
    )


def test_licom_acceptance_passes(licom_reports):
    """The paper's own acceptance: RMSD <= (0.018 C, 0.0098 psu, 0.0005 m)."""
    for name, report in licom_reports.items():
        assert report.passed, f"{name}: {report.measured:.3e} > {report.threshold}"


def test_grist_acceptance_passes(grist_l2):
    l2_h, l2_zeta = grist_l2
    assert l2_h < GRIST_REL_L2_THRESHOLD
    assert l2_zeta < GRIST_REL_L2_THRESHOLD


def test_memory_saving_about_half(runs):
    (ref_model, *_), _ = runs
    policy = PrecisionPolicy({
        "t": Precision.FP32_GROUPSCALED, "s": Precision.FP32_GROUPSCALED,
        "u": Precision.FP32, "v": Precision.FP32,
    })
    rep = policy.memory_report({
        "t": ref_model.t, "s": ref_model.s, "u": ref_model.u, "v": ref_model.v,
    })
    assert rep["saving_fraction"] == pytest.approx(0.5, abs=0.05)


def test_benchmark_groupscale_encode(benchmark):
    field = np.random.default_rng(0).standard_normal((64, 64, 16)) * 1e4
    gs = benchmark(GroupScaled32.encode, field, 64)
    assert gs.compression_ratio() < 0.6
