"""Fig. 8b: weak scaling of the atmosphere and ocean components.

The paper runs four resolutions each on node counts chosen to hold
per-node work roughly fixed (ATM: 25/10/6/3 km on 683/2731/10922/43691
nodes, 87.85 % efficiency; OCN: 10/5/3/2 km on 2107/8212/18225/50035
nodes, 96.57 %).  The machine model — calibrated only on the *strong*
scaling anchors — regenerates the ladders.
"""

import pytest

from repro.bench import WEAK_SCALING, banner, format_table, weak_scaling_series


@pytest.fixture(scope="module")
def series():
    return {c: weak_scaling_series(c) for c in ("atm", "ocn")}


def test_fig8b_report(series, emit_report):
    sections = [banner("Fig. 8b — weak scaling (machine-model prediction)")]
    for comp, data in series.items():
        rows = [
            (f"{r:g} km", n, s, e)
            for r, n, s, e in zip(
                data["resolution_km"], data["nodes"], data["sypd"], data["efficiency"]
            )
        ]
        rows.append((
            "paper terminal", "-", None, data["published_terminal_efficiency"][0]
        ))
        sections.append(f"\n[{comp.upper()}]")
        sections.append(format_table(["resolution", "nodes", "SYPD", "weak eff"], rows))
    emit_report("fig8b_weak_scaling", "\n".join(sections))


@pytest.mark.parametrize("component", ["atm", "ocn"])
def test_weak_efficiency_stays_high(series, component):
    """Both components weak-scale well; the model must agree within 25
    points of the published terminal efficiency (which is itself >85 %)."""
    data = series[component]
    pub = WEAK_SCALING[component]["published_efficiency"]
    assert data["efficiency"][-1] > pub - 0.25


def test_ladder_holds_work_per_node(series):
    """The published ladders keep points-per-node within ~2x across rungs
    (that is what makes Fig. 8b a weak-scaling experiment)."""
    from repro.esm import GRIST_CONFIGS

    data = WEAK_SCALING["atm"]["ladder"]
    per_node = []
    for res, nodes in data:
        cfg = GRIST_CONFIGS[res]
        cells = cfg.cells if cfg.convention == "hexagon" else cfg.vertices
        per_node.append(cells / nodes)
    assert max(per_node) / min(per_node) < 2.5


def test_benchmark_weak_series(benchmark):
    data = benchmark(weak_scaling_series, "ocn")
    assert len(data["sypd"]) == 4


def test_jitter_sensitivity_report(emit_report):
    """The paper attributes its Fig. 8b drop to 'synchronization overhead
    at large node counts'.  The model's extreme-value jitter term (expected
    max of P iid rank times) is swept: the ocean's published terminal
    efficiency (96.57 %) is matched at cv ~ 0.1-0.2; the atmosphere's
    (87.85 %) is NOT reachable through synchronization alone — its drop
    must come from resolution-dependent communication growth the
    fixed-work-per-node model does not represent.  Reported honestly."""
    rows = []
    for cv in (0.0, 0.1, 0.2, 0.3):
        atm = weak_scaling_series("atm", imbalance_cv=cv)["efficiency"][-1]
        ocn = weak_scaling_series("ocn", imbalance_cv=cv)["efficiency"][-1]
        rows.append((cv, atm, ocn))
    rows.append(("paper", 0.8785, 0.9657))
    emit_report(
        "fig8b_jitter_sensitivity",
        "\n".join([
            banner("Fig. 8b sensitivity — synchronization-jitter term"),
            format_table(
                ["imbalance cv", "ATM terminal eff", "OCN terminal eff"], rows
            ),
        ]),
    )
    # The ocean matches with a plausible jitter; the atmosphere does not.
    ocn_cv02 = weak_scaling_series("ocn", imbalance_cv=0.2)["efficiency"][-1]
    assert abs(ocn_cv02 - 0.9657) < 0.02
