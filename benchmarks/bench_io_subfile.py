"""§5.2.5: the subfile parallel-I/O strategy.

Measures (a) real write/read wall time of the binary subfile format over
a group-count sweep, and (b) the analytic shared-file-vs-subfile model at
paper scale (tens of thousands of nodes), where the strategy's value
shows: one shared file serializes through stripe locks while subfile
groups stream concurrently.
"""

import time

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.io import IOCostModel, SubfileLayout, read_subfiles, write_subfiles
from repro.parallel import block_ranges

N_RANKS = 64
GLOBAL = 2_000_000  # doubles (~16 MB): laptop-sized restart slice


def _slices(global_array):
    return [(s, global_array[s:e]) for s, e in block_ranges(len(global_array), N_RANKS)]


@pytest.fixture(scope="module")
def payload():
    return np.random.default_rng(0).standard_normal(GLOBAL)


def test_io_report(payload, tmp_path_factory, emit_report, obs):
    rows = []
    slices = _slices(payload)
    for n_groups in (1, 4, 16, 64):
        layout = SubfileLayout(N_RANKS, n_groups)
        directory = tmp_path_factory.mktemp(f"io{n_groups}")
        t0 = time.perf_counter()
        write_subfiles(directory, "restart", layout, slices, obs=obs)
        t_write = time.perf_counter() - t0
        t0 = time.perf_counter()
        back = read_subfiles(directory, "restart", layout, GLOBAL, obs=obs)
        t_read = time.perf_counter() - t0
        assert np.array_equal(back, payload)
        rows.append((n_groups, t_write * 1e3, t_read * 1e3))
    measured = format_table(["groups", "write [ms]", "read [ms]"], rows)

    model = IOCostModel()
    total = 100e9  # the km-scale restart: ~100 GB
    n_ranks = 500_000
    rows = [("shared file", model.shared_file_time(total, n_ranks))]
    for g in (16, 64, 256, 1024):
        rows.append((f"{g} subfiles", model.subfile_time(total, g)))
    best = model.best_group_count(total, n_ranks)
    modeled = format_table(["strategy", "modeled time [s]"], rows)

    emit_report(
        "io_subfile",
        "\n".join([
            banner("§5.2.5 — subfile parallel I/O"),
            "[measured: 16 MB restart on this machine]",
            measured,
            "",
            "[modeled: 100 GB restart at 500k ranks on OceanLight-class FS]",
            modeled,
            f"\nmodeled optimum: {best} subfile groups",
        ]),
    )


def test_roundtrip_every_group_count(payload, tmp_path):
    layout = SubfileLayout(N_RANKS, 8)
    write_subfiles(tmp_path, "x", layout, _slices(payload))
    assert np.array_equal(read_subfiles(tmp_path, "x", layout, GLOBAL), payload)


def test_model_prefers_subfiles_at_scale():
    model = IOCostModel()
    shared = model.shared_file_time(100e9, 500_000)
    sub = model.subfile_time(100e9, 256)
    assert sub < 0.5 * shared


def test_benchmark_subfile_write(benchmark, payload, tmp_path):
    layout = SubfileLayout(N_RANKS, 16)
    slices = _slices(payload)
    benchmark(write_subfiles, tmp_path, "bench", layout, slices)


def test_benchmark_subfile_read(benchmark, payload, tmp_path):
    layout = SubfileLayout(N_RANKS, 16)
    write_subfiles(tmp_path, "bench", layout, _slices(payload))
    out = benchmark(read_subfiles, tmp_path, "bench", layout, GLOBAL)
    assert len(out) == GLOBAL
