"""Table 1: model configurations and grid counts.

Regenerates the published grid counts from first principles — icosahedral
Euler relations for GRIST (including the table's counting-convention
quirk), nlon x nlat x levels for LICOM, and the coupled totals — and
verifies them against a really-constructed mesh at small subdivision
levels.  The timed kernel is the mesh generator itself.
"""

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.esm import (
    AP3ESM_CONFIGS,
    GRIST_CONFIGS,
    LICOM_CONFIGS,
    grist_counts_from_hexagons,
    grist_counts_from_triangles,
    licom_grid_points,
)
from repro.grids import IcosahedralGrid, icosahedral_counts


def test_table1_report(emit_report):
    rows = []
    for res, cfg in sorted(GRIST_CONFIGS.items()):
        if cfg.convention == "triangle":
            edges, vertices = grist_counts_from_triangles(cfg.cells)
        else:
            edges, vertices = grist_counts_from_hexagons(cfg.cells)
        rows.append((
            f"{res:g} km", f"L{cfg.icos_level}", f"{cfg.cells:.2e}",
            f"{cfg.edges:.2e}", f"{edges:.2e}",
            f"{cfg.vertices:.2e}", f"{vertices:.2e}",
        ))
    grist = format_table(
        ["GRIST res", "level", "cells(pub)", "edges(pub)", "edges(calc)",
         "verts(pub)", "verts(calc)"],
        rows,
    )

    rows = []
    for res, cfg in sorted(LICOM_CONFIGS.items()):
        rows.append((
            f"{res:g} km", cfg.nlon, cfg.nlat, f"{cfg.grid_points:.2e}",
            f"{licom_grid_points(cfg):.2e}",
        ))
    licom = format_table(
        ["LICOM res", "nlon", "nlat", "points(pub)", "points(calc)"], rows
    )

    rows = []
    for label, pairing in AP3ESM_CONFIGS.items():
        combined = pairing.atm.grid_points + pairing.ocn.grid_points
        rows.append((label, f"{pairing.total_grid_points:.2e}", f"{combined:.2e}"))
    coupled = format_table(["AP3ESM", "total(pub)", "atm+ocn(calc)"], rows)

    emit_report(
        "table1_configs",
        "\n".join([
            banner("Table 1 — model configurations (paper vs recomputed)"),
            grist,
            "",
            licom,
            "",
            coupled,
            "",
            "note: the 1-km GRIST row counts triangles (2:3:1); the other "
            "rows count hexagons (1:3:2) — both satisfy the icosahedral "
            "Euler relations at integer subdivision levels 8-12.",
        ]),
    )

    # The checks behind the printed table.
    nc, ne, nd = icosahedral_counts(12)
    assert nd == pytest.approx(GRIST_CONFIGS[1.0].cells, rel=0.02)
    assert licom_grid_points(LICOM_CONFIGS[1.0]) == pytest.approx(6.3e10, rel=0.01)


def test_generated_mesh_matches_formula(benchmark):
    """Benchmark the mesh generator; verify counts against the formula."""
    grid = benchmark(IcosahedralGrid.build, 4)
    assert (grid.n_cells, grid.n_edges, grid.n_dual) == icosahedral_counts(4)
    assert grid.n_cells - grid.n_edges + grid.n_dual == 2
    total = 4 * np.pi * grid.radius**2
    assert grid.area_cell.sum() == pytest.approx(total, rel=1e-9)
