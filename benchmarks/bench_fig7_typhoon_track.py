"""Fig. 7: typhoon track and intensity vs the best track.

The paper compares the AP3ESM 3v2 forecast of Doksuri against the CMA
best track and ERA5, finding close agreement early and qualitative
agreement late, with the coupled model "reproduc[ing] a more intense
typhoon compared to the ERA5 reanalysis".  Offline substitution: the
highest-resolution run of the idealized vortex is the "best track"; the
coarser forecast run is compared against it, and a smoothed (ERA5-like)
variant demonstrates the intensity ordering.
"""

import math

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.esm import (
    AP3ESM,
    AP3ESMConfig,
    HollandVortex,
    TyphoonExperiment,
    track_distance,
)

VORTEX = HollandVortex(
    center_lon=math.radians(150.0), center_lat=math.radians(20.0),
    v_max=40.0, r_max=5.0e5,
)
HOURS = 18


def _run(atm_level, vortex=VORTEX):
    model = AP3ESM(AP3ESMConfig(atm_level=atm_level, ocn_nlon=64, ocn_nlat=48,
                                ocn_levels=8))
    model.init()
    exp = TyphoonExperiment(model, vortex)
    exp.run(HOURS)
    return exp


@pytest.fixture(scope="module")
def best_track_run():
    return _run(4)


@pytest.fixture(scope="module")
def forecast_run():
    return _run(3)


@pytest.fixture(scope="module")
def era5_like_run():
    """A smoothed-initial-condition variant standing in for the weaker
    reanalysis vortex."""
    weak = HollandVortex(
        center_lon=VORTEX.center_lon, center_lat=VORTEX.center_lat,
        v_max=0.55 * VORTEX.v_max, r_max=1.6 * VORTEX.r_max,
    )
    return _run(4, vortex=weak)


def test_fig7_report(best_track_run, forecast_run, era5_like_run, emit_report):
    best = best_track_run.tracker.track()
    fcst = forecast_run.tracker.track()
    era = era5_like_run.tracker.track()
    sep = track_distance(best, fcst)
    n = min(len(best), len(fcst))
    rows = []
    for k in range(0, n, max(1, n // 6)):
        rows.append((
            f"+{best[k, 0] / 3600:.0f} h",
            f"({math.degrees(best[k,1]):.1f}, {math.degrees(best[k,2]):.1f})",
            f"({math.degrees(fcst[k,1]):.1f}, {math.degrees(fcst[k,2]):.1f})",
            best[k, 3], fcst[k, 3], era[k, 3],
        ))
    emit_report(
        "fig7_typhoon_track",
        "\n".join([
            banner("Fig. 7 — track and intensity vs best track"),
            format_table(
                ["time", "best (lon,lat)", "forecast (lon,lat)",
                 "best Vmax", "fcst Vmax", "ERA5-like Vmax"],
                rows,
            ),
            f"\nmean track separation: {sep:.0f} km over +{HOURS} h",
        ]),
    )


def test_track_agreement_early(best_track_run, forecast_run):
    """'During the initial stage, the simulated track shows close
    agreement': the first fixes must be within a couple of grid cells."""
    best = best_track_run.tracker.track()
    fcst = forecast_run.tracker.track()
    early = track_distance(best[:4], fcst[:4])
    assert early < 1500.0  # km, ~2 coarse-grid cells


def test_track_agreement_overall(best_track_run, forecast_run):
    best = best_track_run.tracker.track()
    fcst = forecast_run.tracker.track()
    assert track_distance(best, fcst) < 2500.0


def test_model_more_intense_than_era5_like(best_track_run, era5_like_run):
    """'the AP3ESM 3v2 simulation can reproduce a more intense typhoon
    compared to the ERA5 reanalysis'."""
    best = best_track_run.tracker.track()
    era = era5_like_run.tracker.track()
    n = min(len(best), len(era))
    assert np.mean(best[:n, 3]) > np.mean(era[:n, 3])


def test_both_tracks_move_poleward(best_track_run, forecast_run):
    for exp in (best_track_run, forecast_run):
        track = exp.tracker.track()
        assert track[-1, 2] > track[0, 2] - math.radians(1.0)


def test_benchmark_tracker_fix(benchmark, best_track_run):
    fix = benchmark(best_track_run.tracker.fix)
    assert np.isfinite(fix.max_wind)
