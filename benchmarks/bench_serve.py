"""Scenario job service: journal accounting and kill-recovery contracts.

Measures the ``repro.serve`` stack at benchmark scale: the journal's
per-job record accounting (deterministic — every state transition is
exactly one append), the worker-kill recovery contract (a killed and
resumed job publishes a restart set bitwise-identical to a never-killed
twin's, costing one extra dispatch and zero failures), and the journal's
append/replay throughput.

Emits ``BENCH_serve.json``: the record counts and recovery flags are
machine-independent and gated by the CI perf gate; journal throughput
and job wall times ride along informationally.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench import PerfBaseline, banner, compare_baselines, emit, format_table
from repro.esm import AP3ESMConfig
from repro.resilience import FaultPlan, ServiceFault
from repro.serve import JobScheduler, JobSpec, JobStore, ServeConfig

BENCH_JSON = "BENCH_serve.json"
BASELINE_DIR = Path(__file__).parent / "baselines"

SMALL = dict(atm_level=2, ocn_nlon=24, ocn_nlat=16, ocn_levels=4)
COUPLINGS = 2
JOURNAL_APPENDS = 400
ROTATE_EVERY = 100

SPECS = [
    JobSpec("job0", couplings=COUPLINGS, perturb_amplitude=1e-3),
    JobSpec("job1", couplings=COUPLINGS, perturb_seed=1,
            perturb_amplitude=1e-3),
]

KILL_PLAN = FaultPlan(service=[
    ServiceFault(kind="worker_kill", coupling=1, job="job1"),
])


def _run_service(root: Path, plan=None):
    """One service lifetime over SPECS; returns (scheduler, wall_s)."""
    with JobStore(root / "store") as store:
        sched = JobScheduler(
            store, AP3ESMConfig(**SMALL), root / "work",
            ServeConfig(checkpoint_every=1), fault_plan=plan,
        )
        for spec in SPECS:
            sched.submit(spec)
        t0 = time.perf_counter()
        counts = sched.run_until_idle()
        wall = time.perf_counter() - t0
    assert counts == {"completed": len(SPECS)}, counts
    return sched, wall


def _dir_bytes(root: Path) -> dict:
    return {p.relative_to(root).as_posix(): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()}


def _completed_counts(journal: Path) -> dict:
    done: dict = {}
    for line in journal.read_text().splitlines():
        body = json.loads(line)["body"]
        if body.get("event") == "state" and body.get("state") == "completed":
            done[body["job_id"]] = done.get(body["job_id"], 0) + 1
    return done


def _journal_throughput(root: Path):
    """Append and replay walls for a journal of JOURNAL_APPENDS records."""
    with JobStore(root, rotate_every=ROTATE_EVERY) as store:
        t0 = time.perf_counter()
        for k in range(JOURNAL_APPENDS // 2):
            store.submit(JobSpec(f"j{k}", couplings=1))
        for k in range(JOURNAL_APPENDS // 2):
            store.update(f"j{k}", "completed", result={"couplings": 1})
        t_append = time.perf_counter() - t0
        appends = store.appends
    t0 = time.perf_counter()
    with JobStore(root, rotate_every=ROTATE_EVERY) as store:
        t_replay = time.perf_counter() - t0
        jobs = len(store.jobs)
    return appends, jobs, t_append, t_replay


def _bench_document(base: Path) -> PerfBaseline:
    doc = PerfBaseline(suite="serve")

    # Deterministic journal accounting (gated): one record per
    # transition means the twin's journal length is pure arithmetic —
    # submit + running + completed per job.
    twin, t_twin = _run_service(base / "twin")
    doc.record("service.jobs", len(SPECS))
    doc.record("service.twin_journal_records", twin.store.appends)
    doc.record("service.twin_records_per_job",
               twin.store.appends / len(SPECS))

    # Kill-recovery contract (gated): the worker_kill costs exactly one
    # interruption + one redispatch, zero failures, and the published
    # restart sets stay bitwise-identical to the twin's.
    hurt, t_hurt = _run_service(base / "hurt", plan=KILL_PLAN)
    bitwise = all(
        _dir_bytes(hurt.runner.published_dir(s.job_id))
        == _dir_bytes(twin.runner.published_dir(s.job_id))
        for s in SPECS
    )
    done = _completed_counts(hurt.store.path)
    doc.record("recovery.faults_injected", hurt.injector.injected)
    doc.record("recovery.interruption_records",
               hurt.store.appends - twin.store.appends)
    doc.record("recovery.failures",
               sum(r.failures for r in hurt.store.jobs.values()))
    doc.record("recovery.kill_recovery_bitwise", float(bitwise))
    doc.record("recovery.completed_exactly_once",
               float(all(done.get(s.job_id) == 1 for s in SPECS)))

    # Journal rotation arithmetic (gated) + throughput (informational).
    appends, jobs, t_append, t_replay = _journal_throughput(base / "journal")
    doc.record("journal.appends", appends)
    doc.record("journal.jobs_reconstructed", jobs)
    doc.record("wall.journal_append_us",
               t_append / appends * 1e6, kind="wall", unit="us")
    doc.record("wall.journal_replay_ms", t_replay * 1e3, kind="wall",
               unit="ms")
    doc.record("wall.twin_run_s", t_twin, kind="wall", unit="s")
    doc.record("wall.kill_recovery_overhead", t_hurt / t_twin, kind="wall",
               unit="x")
    return doc


@pytest.fixture(scope="module")
def doc(tmp_path_factory):
    return _bench_document(tmp_path_factory.mktemp("bench-serve"))


def test_kill_recovery_contract(doc):
    """The acceptance contract: recovery is bitwise, exactly-once, and
    costs interruptions — never failures."""
    m = doc.metrics
    assert m["recovery.kill_recovery_bitwise"]["value"] == 1.0
    assert m["recovery.completed_exactly_once"]["value"] == 1.0
    assert m["recovery.failures"]["value"] == 0.0
    assert m["recovery.faults_injected"]["value"] == 1.0


def test_serve_report(doc, emit_report):
    m = {k: v["value"] for k, v in doc.metrics.items()}
    emit_report(
        "serve_kill_recovery",
        "\n".join([
            banner("Scenario service — journal + kill recovery"),
            format_table(
                ["metric", "value"],
                [("jobs", int(m["service.jobs"])),
                 ("twin journal records", int(m["service.twin_journal_records"])),
                 ("interruption records", int(m["recovery.interruption_records"])),
                 ("failures after worker kill", int(m["recovery.failures"])),
                 ("kill recovery bitwise", bool(m["recovery.kill_recovery_bitwise"])),
                 ("completed exactly once", bool(m["recovery.completed_exactly_once"])),
                 ("journal append [us]", f"{m['wall.journal_append_us']:.1f}"),
                 ("journal replay [ms]", f"{m['wall.journal_replay_ms']:.2f}")],
            ),
            f"\nrecovery wall overhead: {m['wall.kill_recovery_overhead']:.2f}x "
            "(informational)",
        ]),
    )


def test_emit_bench_serve_json(doc, report_dir):
    """Emit BENCH_serve.json — the document the CI perf gate compares
    against benchmarks/baselines/BENCH_serve.json."""
    emit(doc, report_dir)


def test_gate_against_committed_baseline(doc):
    """The acceptance check the CI job runs: the record counts are
    deterministic, so any drift against the committed baseline is a real
    behavior change."""
    baseline_path = BASELINE_DIR / BENCH_JSON
    if not baseline_path.exists():
        pytest.skip("no committed baseline yet")
    comparison = compare_baselines(
        doc, PerfBaseline.from_file(baseline_path), tolerance=0.15
    )
    print("\n" + comparison.report())
    assert comparison.ok, comparison.report()
