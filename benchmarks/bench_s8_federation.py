"""§8 (future work): federating HPC centers through a computing-power
network.

"To further scale, we will explore federating geographically distributed
HPC clusters through a computing power network, enabling task-level
parallel execution of distinct ESM components."

The bench prices the 3v2 configuration with the atmosphere on Sunway
OceanLight and the ocean on ORISE, coupled across a WAN, against the best
single-machine two-domain split — including the break-even WAN bandwidth
and the latency sensitivity.
"""

from dataclasses import replace

import pytest

from repro.bench import STRONG_SCALING_CURVES, banner, format_table, resources_to_processes
from repro.esm.config import GRIST_CONFIGS, LICOM_CONFIGS
from repro.machine import (
    CoupledPerfModel,
    CouplingSpec,
    FederatedESM,
    PerfModel,
    WanLink,
    atm_workload,
    ocn_workload,
    orise,
    sunway_oceanlight,
)

SUNWAY_PROCS = 260_000
ORISE_PROCS = 16_000


@pytest.fixture(scope="module")
def setup():
    sunway = PerfModel(sunway_oceanlight(), mode="accelerated")
    ori = PerfModel(orise(), mode="accelerated")
    atm_curve = STRONG_SCALING_CURVES["atm_3km_cpe"]
    wl_a = atm_workload(int(GRIST_CONFIGS[3.0].cells), 30)
    cal_a, wl_a = sunway.calibrated(
        wl_a,
        [(resources_to_processes(atm_curve, p.resources), p.sypd)
         for p in atm_curve.anchors()],
    )
    ocn_curve = STRONG_SCALING_CURVES["ocn_1km_orise_opt"]
    wl_o = ocn_workload(
        LICOM_CONFIGS[2.0].nlon * LICOM_CONFIGS[2.0].nlat, 80, compressed=True
    )
    cal_o, wl_o = ori.calibrated(
        wl_o, [(4060, 0.92 * 4.85), (16085, 1.98 * 4.85)]
        # the 2-km problem is ~4.85x smaller than the 1-km curve's, so the
        # anchor throughputs scale accordingly (same machine, same code)
    )
    coupling = CouplingSpec(
        exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
        bytes_per_exchange={"atm": 4.2e8, "ocn": 1.7e9, "ice": 4.2e8},
    )
    fed = FederatedESM(
        model1=cal_a, workload1=wl_a, model2=cal_o, workload2=wl_o,
        coupling=coupling,
    )
    # Single machine: both components on Sunway (the paper's deployment).
    cal_o_sw, wl_o_sw = PerfModel(sunway_oceanlight(), mode="accelerated").calibrated(
        ocn_workload(LICOM_CONFIGS[2.0].nlon * LICOM_CONFIGS[2.0].nlat, 80, compressed=True),
        [(resources_to_processes(STRONG_SCALING_CURVES["ocn_2km_cpe"], p.resources), p.sypd)
         for p in STRONG_SCALING_CURVES["ocn_2km_cpe"].anchors()],
    )
    single = CoupledPerfModel(
        model1=cal_a, model2=cal_o_sw, domain1=(wl_a,), domain2=(wl_o_sw,),
        coupling=coupling,
    )
    return fed, single


def test_federation_report(setup, emit_report):
    fed, single = setup
    rows = []
    for label, link in (
        ("research WAN (100 Gb/s, 50 ms)", WanLink()),
        ("metro link (100 Gb/s, 5 ms)", WanLink(latency_s=0.005)),
        ("commodity (10 Gb/s, 100 ms)", WanLink(latency_s=0.1, bandwidth=1.25e9)),
    ):
        f = replace(fed, link=link)
        out = f.compare_with_single_machine(
            single, SUNWAY_PROCS, SUNWAY_PROCS, ORISE_PROCS
        )
        rows.append((
            label, out["single_machine_s_per_day"], out["federated_s_per_day"],
            out["federation_speedup"], f"{100 * out['wan_share_of_federated']:.1f}%",
        ))
    bw = fed.breakeven_bandwidth(
        single.time_per_day(*single.balance_resources(SUNWAY_PROCS)),
        SUNWAY_PROCS, ORISE_PROCS,
    )
    emit_report(
        "s8_federation",
        "\n".join([
            banner("§8 — computing-power-network federation (3v2: atm on "
                   "Sunway + ocn on ORISE)"),
            format_table(
                ["WAN class", "single [s/day]", "federated [s/day]",
                 "speedup", "WAN share"],
                rows,
            ),
            f"\nbreak-even WAN bandwidth vs the single-machine split: "
            f"{(bw or 0) / 1.25e8:.1f} Gb/s"
            if bw else "\nlatency alone exceeds the single-machine budget",
        ]),
    )


def test_federation_wins_with_dedicated_link(setup):
    fed, single = setup
    out = fed.compare_with_single_machine(
        single, SUNWAY_PROCS, SUNWAY_PROCS, ORISE_PROCS
    )
    assert out["federation_speedup"] > 1.0


def test_commodity_link_erodes_the_gain(setup):
    fed, single = setup
    bad = replace(fed, link=WanLink(latency_s=0.1, bandwidth=1.25e9))
    good = fed.compare_with_single_machine(single, SUNWAY_PROCS, SUNWAY_PROCS, ORISE_PROCS)
    worse = bad.compare_with_single_machine(single, SUNWAY_PROCS, SUNWAY_PROCS, ORISE_PROCS)
    assert worse["federation_speedup"] < good["federation_speedup"]


def test_benchmark_federated_evaluation(benchmark, setup):
    fed, _ = setup
    sypd = benchmark(fed.predict_sypd, SUNWAY_PROCS, ORISE_PROCS)
    assert sypd > 0
