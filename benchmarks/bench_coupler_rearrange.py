"""§5.2.4: coupler optimization.

Three published optimizations, measured:

1. **Offline GSMap/Router construction** — build cost and table memory vs
   loading precomputed tables (the Sunway CG memory-pressure fix);
2. **Unused-field pruning** — bytes saved per exchange on the CESM bundles;
3. **All-to-all -> non-blocking point-to-point rearranger** — message and
   byte counts on the simulated runtime, plus modeled time at paper scale.
"""

import time

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.coupler import AttrVect, FieldRegistry, GlobalSegMap, Rearranger, Router
from repro.parallel import SimWorld
from repro.parallel.collectives import cost_alltoall, cost_alltoall_sparse

N_PES = 8
GSIZE = 4096


@pytest.fixture(scope="module")
def maps():
    src = GlobalSegMap.from_owners(np.repeat(np.arange(N_PES), GSIZE // N_PES))
    # Destination nearly aligned with the source (each rank overlaps ~3
    # others) — the typical same-grid coupler rearrangement.
    dst = GlobalSegMap.from_owners(np.roll(np.repeat(np.arange(N_PES), GSIZE // N_PES), GSIZE // 5))
    return src, dst


@pytest.fixture(scope="module")
def router(maps):
    return Router.build(*maps)


def _run_world(maps, router, method, obs=None):
    src, dst = maps
    world = SimWorld(N_PES)
    rearranger = Rearranger(router, method=method)
    gfield = np.arange(GSIZE, dtype=float)

    def program(comm):
        me = comm.rank
        rank_obs = obs.fork(me) if (obs is not None and obs.enabled) else None
        av = AttrVect.from_dict({
            "taux": gfield[src.local_indices(me)],
            "tauy": gfield[src.local_indices(me)] * 2,
            "swnet": gfield[src.local_indices(me)] * 3,
        })
        out = rearranger.rearrange(
            comm, av, len(dst.local_indices(me)), obs=rank_obs
        )
        return out.get("taux")

    results = world.run(program)
    for pe, got in enumerate(results):
        assert np.array_equal(got, gfield[dst.local_indices(pe)])
    if obs is not None and obs.enabled:
        obs.metrics.record_traffic(world.ledger, prefix="cpl.comm")
    return world.ledger


def test_coupler_report(maps, router, emit_report, obs):
    src, dst = maps
    # 1. Offline precompute.
    t0 = time.perf_counter()
    Router.build(src, dst)
    build_s = time.perf_counter() - t0
    import tempfile, pathlib

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "router.npz"
        router.save(path)
        t0 = time.perf_counter()
        Router.load(path)
        load_s = time.perf_counter() - t0

    # 2. Field pruning.
    reg = FieldRegistry.cesm_default()
    reg.mark_used("x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet",
                          "Foxx_lwdn", "Foxx_sen", "Foxx_lat", "Foxx_rain"])
    savings = reg.savings("x2o", lsize=GSIZE // N_PES)

    # 3. Rearranger traffic (traced when --trace is given).
    led_a2a = _run_world(maps, router, "alltoall", obs=obs)
    led_p2p = _run_world(maps, router, "p2p", obs=obs)
    counts = Rearranger(router).message_counts(N_PES)

    # Tracing-off overhead: the obs=None path must stay in the noise.
    t0 = time.perf_counter()
    _run_world(maps, router, "p2p")
    t_off = time.perf_counter() - t0
    from repro.obs import Obs

    t0 = time.perf_counter()
    _run_world(maps, router, "p2p", obs=Obs())
    t_on = time.perf_counter() - t0

    # Modeled time at paper scale (100k ranks, 16 real partners).
    p = 100_000
    nbytes = 64 * 1024
    msgs_dense, bytes_dense = cost_alltoall(nbytes, p)
    msgs_sparse, bytes_sparse = cost_alltoall_sparse(nbytes, 16, p)
    lat, bw = 2.5e-6, 2.0e10
    t_dense = msgs_dense * lat + bytes_dense / bw
    t_sparse = msgs_sparse * lat + bytes_sparse / bw

    rows = [
        ("Router build [ms]", build_s * 1e3, None),
        ("Router load (offline) [ms]", load_s * 1e3, None),
        ("Router table [KiB/rank-pair set]", router.memory_bytes() / 1024, None),
        ("x2o fields pruned [%]", 100 * savings["fraction_saved"], None),
        ("bytes/exchange before prune", savings["bytes_before"], None),
        ("bytes/exchange after prune", savings["bytes_after"], None),
        ("alltoall messages (8 ranks)", float(led_a2a.total_messages), None),
        ("p2p messages (8 ranks)", float(led_p2p.total_messages), None),
        ("modeled dense alltoall @100k ranks [s]", t_dense, None),
        ("modeled sparse p2p @100k ranks [s]", t_sparse, None),
        ("modeled speedup", t_dense / t_sparse, None),
        ("p2p rearrange, tracing off [ms]", t_off * 1e3, None),
        ("p2p rearrange, tracing on [ms]", t_on * 1e3, None),
    ]
    emit_report(
        "coupler_rearrange",
        "\n".join([
            banner("§5.2.4 — coupler optimization"),
            format_table(["metric", "value", "paper"], rows, floatfmt="{:.4g}"),
        ]),
    )


def test_p2p_moves_less_than_alltoall(maps, router):
    led_a2a = _run_world(maps, router, "alltoall")
    led_p2p = _run_world(maps, router, "p2p")
    assert led_p2p.total_messages < led_a2a.total_messages


def test_offline_tables_roundtrip(maps, router, tmp_path):
    src, dst = maps
    src.save(tmp_path / "gsmap.npz")
    router.save(tmp_path / "router.npz")
    src2 = GlobalSegMap.load(tmp_path / "gsmap.npz")
    router2 = Router.load(tmp_path / "router.npz")
    assert np.array_equal(src2.owner_array(), src.owner_array())
    assert router2.n_pairs == router.n_pairs


def test_sparse_beats_dense_at_scale():
    """The latency term dominates at 100k ranks: 16 partners vs P-1."""
    p, nbytes = 100_000, 64 * 1024
    m_d, b_d = cost_alltoall(nbytes, p)
    m_s, b_s = cost_alltoall_sparse(nbytes, 16, p)
    assert m_s < m_d / 1000
    assert b_s < b_d


def test_pruning_halves_x2o(maps):
    reg = FieldRegistry.cesm_default()
    reg.mark_used("x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet",
                          "Foxx_lwdn", "Foxx_sen", "Foxx_lat", "Foxx_rain"])
    assert reg.savings("x2o", 1000)["fraction_saved"] == pytest.approx(0.5)


def test_benchmark_router_build(benchmark, maps):
    router = benchmark(Router.build, *maps)
    assert router.total_points() == GSIZE


def test_benchmark_p2p_rearrange(benchmark, maps, router):
    benchmark(_run_world, maps, router, "p2p")
