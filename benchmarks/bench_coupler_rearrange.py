"""§5.2.4: coupler optimization.

Three published optimizations, measured:

1. **Offline GSMap/Router construction** — build cost and table memory vs
   loading precomputed tables (the Sunway CG memory-pressure fix);
2. **Unused-field pruning** — bytes saved per exchange on the CESM bundles;
3. **All-to-all -> non-blocking point-to-point rearranger** — message and
   byte counts on the simulated runtime, plus modeled time at paper scale.
"""

import time

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.bench import PerfBaseline, compare_baselines, emit
from repro.coupler import (
    AttrVect,
    CouplerCache,
    FieldRegistry,
    GlobalSegMap,
    Rearranger,
    RearrangePlan,
    Router,
)
from repro.parallel import SimWorld
from repro.parallel.collectives import cost_alltoall, cost_alltoall_sparse

N_PES = 8
GSIZE = 4096


@pytest.fixture(scope="module")
def maps():
    src = GlobalSegMap.from_owners(np.repeat(np.arange(N_PES), GSIZE // N_PES))
    # Destination nearly aligned with the source (each rank overlaps ~3
    # others) — the typical same-grid coupler rearrangement.
    dst = GlobalSegMap.from_owners(np.roll(np.repeat(np.arange(N_PES), GSIZE // N_PES), GSIZE // 5))
    return src, dst


@pytest.fixture(scope="module")
def router(maps):
    return Router.build(*maps)


def _run_world(maps, router, method, obs=None):
    src, dst = maps
    world = SimWorld(N_PES)
    rearranger = Rearranger(router, method=method)
    gfield = np.arange(GSIZE, dtype=float)

    def program(comm):
        me = comm.rank
        rank_obs = obs.fork(me) if (obs is not None and obs.enabled) else None
        av = AttrVect.from_dict({
            "taux": gfield[src.local_indices(me)],
            "tauy": gfield[src.local_indices(me)] * 2,
            "swnet": gfield[src.local_indices(me)] * 3,
        })
        out = rearranger.rearrange(
            comm, av, len(dst.local_indices(me)), obs=rank_obs
        )
        return out.get("taux")

    results = world.run(program)
    for pe, got in enumerate(results):
        assert np.array_equal(got, gfield[dst.local_indices(pe)])
    if obs is not None and obs.enabled:
        obs.metrics.record_traffic(world.ledger, prefix="cpl.comm")
    return world.ledger


def test_coupler_report(maps, router, emit_report, obs):
    src, dst = maps
    # 1. Offline precompute.
    t0 = time.perf_counter()
    Router.build(src, dst)
    build_s = time.perf_counter() - t0
    import tempfile, pathlib

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "router.npz"
        router.to_file(path)
        t0 = time.perf_counter()
        Router.from_file(path)
        load_s = time.perf_counter() - t0

    # 2. Field pruning.
    reg = FieldRegistry.cesm_default()
    reg.mark_used("x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet",
                          "Foxx_lwdn", "Foxx_sen", "Foxx_lat", "Foxx_rain"])
    savings = reg.savings("x2o", lsize=GSIZE // N_PES)

    # 3. Rearranger traffic (traced when --trace is given).
    led_a2a = _run_world(maps, router, "alltoall", obs=obs)
    led_p2p = _run_world(maps, router, "p2p", obs=obs)
    counts = Rearranger(router).message_counts(N_PES)

    # Tracing-off overhead: the obs=None path must stay in the noise.
    t0 = time.perf_counter()
    _run_world(maps, router, "p2p")
    t_off = time.perf_counter() - t0
    from repro.obs import Obs

    t0 = time.perf_counter()
    _run_world(maps, router, "p2p", obs=Obs())
    t_on = time.perf_counter() - t0

    # Modeled time at paper scale (100k ranks, 16 real partners).
    p = 100_000
    nbytes = 64 * 1024
    msgs_dense, bytes_dense = cost_alltoall(nbytes, p)
    msgs_sparse, bytes_sparse = cost_alltoall_sparse(nbytes, 16, p)
    lat, bw = 2.5e-6, 2.0e10
    t_dense = msgs_dense * lat + bytes_dense / bw
    t_sparse = msgs_sparse * lat + bytes_sparse / bw

    rows = [
        ("Router build [ms]", build_s * 1e3, None),
        ("Router load (offline) [ms]", load_s * 1e3, None),
        ("Router table [KiB/rank-pair set]", router.memory_bytes() / 1024, None),
        ("x2o fields pruned [%]", 100 * savings["fraction_saved"], None),
        ("bytes/exchange before prune", savings["bytes_before"], None),
        ("bytes/exchange after prune", savings["bytes_after"], None),
        ("alltoall messages (8 ranks)", float(led_a2a.total_messages), None),
        ("p2p messages (8 ranks)", float(led_p2p.total_messages), None),
        ("modeled dense alltoall @100k ranks [s]", t_dense, None),
        ("modeled sparse p2p @100k ranks [s]", t_sparse, None),
        ("modeled speedup", t_dense / t_sparse, None),
        ("p2p rearrange, tracing off [ms]", t_off * 1e3, None),
        ("p2p rearrange, tracing on [ms]", t_on * 1e3, None),
    ]
    emit_report(
        "coupler_rearrange",
        "\n".join([
            banner("§5.2.4 — coupler optimization"),
            format_table(["metric", "value", "paper"], rows, floatfmt="{:.4g}"),
        ]),
    )


def test_p2p_moves_less_than_alltoall(maps, router):
    led_a2a = _run_world(maps, router, "alltoall")
    led_p2p = _run_world(maps, router, "p2p")
    assert led_p2p.total_messages < led_a2a.total_messages


def test_offline_tables_roundtrip(maps, router, tmp_path):
    src, dst = maps
    src.to_file(tmp_path / "gsmap.npz")
    router.to_file(tmp_path / "router.npz")
    src2 = GlobalSegMap.from_file(tmp_path / "gsmap.npz")
    router2 = Router.from_file(tmp_path / "router.npz")
    assert np.array_equal(src2.owner_array(), src.owner_array())
    assert router2.n_pairs == router.n_pairs


def test_sparse_beats_dense_at_scale():
    """The latency term dominates at 100k ranks: 16 partners vs P-1."""
    p, nbytes = 100_000, 64 * 1024
    m_d, b_d = cost_alltoall(nbytes, p)
    m_s, b_s = cost_alltoall_sparse(nbytes, 16, p)
    assert m_s < m_d / 1000
    assert b_s < b_d


def test_pruning_halves_x2o(maps):
    reg = FieldRegistry.cesm_default()
    reg.mark_used("x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet",
                          "Foxx_lwdn", "Foxx_sen", "Foxx_lat", "Foxx_rain"])
    assert reg.savings("x2o", 1000)["fraction_saved"] == pytest.approx(0.5)


def test_benchmark_router_build(benchmark, maps):
    router = benchmark(Router.build, *maps)
    assert router.total_points() == GSIZE


def test_benchmark_p2p_rearrange(benchmark, maps, router):
    benchmark(_run_world, maps, router, "p2p")


# -- coalesced plans, the cache, and the JSON perf baseline ------------------

PLAN_BUNDLES = {
    "x2o": ["taux", "tauy", "swnet", "lwdn"],
    "i2x": ["ifrac", "tsurf"],
}
N_PLAN_FIELDS = sum(len(f) for f in PLAN_BUNDLES.values())

BENCH_JSON = "BENCH_coupler.json"
BASELINE_DIR = __import__("pathlib").Path(__file__).parent / "baselines"


def _bundle_values(src, rank):
    idx = src.local_indices(rank)
    return {
        name: AttrVect.from_dict(
            {f: np.arange(GSIZE, dtype=float)[idx] * (i + 1)
             for i, f in enumerate(fields)}
        )
        for name, fields in PLAN_BUNDLES.items()
    }


def _run_granularity_world(maps, router, granularity):
    """Ship both PLAN_BUNDLES through the legacy rearranger layouts."""
    src, dst = maps
    world = SimWorld(N_PES)
    rearranger = Rearranger(router, method="p2p", granularity=granularity)

    def program(comm):
        dst_lsize = len(dst.local_indices(comm.rank))
        for av in _bundle_values(src, comm.rank).values():
            rearranger.rearrange(comm, av, dst_lsize)

    world.run(program)
    return world.ledger


def _run_plan_world(maps, router):
    src, dst = maps
    plan = RearrangePlan.compile(router, PLAN_BUNDLES)
    world = SimWorld(N_PES)

    def program(comm):
        plan.execute(
            comm, _bundle_values(src, comm.rank), len(dst.local_indices(comm.rank))
        )

    world.run(program)
    return plan, world.ledger


def _edges(router):
    return sum(1 for (p, q) in router.send if p != q)


def test_plan_beats_field_granularity_on_the_ledger(maps, router):
    """The coalescing chain: per-field > per-bundle > one plan message
    per edge, all over the same Router."""
    led_field = _run_granularity_world(maps, router, "field")
    led_bundle = _run_granularity_world(maps, router, "bundle")
    plan, led_plan = _run_plan_world(maps, router)
    edges = _edges(router)
    assert led_plan.p2p_messages == edges
    assert led_bundle.p2p_messages == edges * len(PLAN_BUNDLES)
    assert led_field.p2p_messages == edges * N_PLAN_FIELDS
    assert led_field.p2p_messages >= N_PLAN_FIELDS * led_plan.p2p_messages
    assert plan.message_counts(N_PES)["message_reduction"] == N_PLAN_FIELDS


def test_cache_cold_build_warm_load(maps, tmp_path):
    """The offline preprocessing step, automated: the second run resolves
    the same content key and never calls Router.build."""
    src, dst = maps
    cold = CouplerCache(tmp_path)
    cold.get_gsmap("src", src.owner_array())
    cold.get_gsmap("dst", dst.owner_array())
    cold.get_router("src", "dst", src, dst)
    assert (cold.hits, cold.misses) == (0, 3)
    warm = CouplerCache(tmp_path)
    warm.get_gsmap("src", src.owner_array())
    warm.get_gsmap("dst", dst.owner_array())
    warm.get_router("src", "dst", src, dst)
    assert (warm.hits, warm.misses) == (3, 0)
    assert warm.build_time_saved_s > 0.0


def _bench_document(maps, router, tmp_path):
    src, dst = maps
    doc = PerfBaseline(suite="coupler")
    edges = _edges(router)

    # Deterministic message arithmetic (gated).
    led_field = _run_granularity_world(maps, router, "field")
    led_bundle = _run_granularity_world(maps, router, "bundle")
    plan, led_plan = _run_plan_world(maps, router)
    led_a2a = _run_world(maps, router, "alltoall")
    doc.record("router.edges", edges)
    doc.record("plan.p2p_messages", led_plan.p2p_messages)
    doc.record("bundle.p2p_messages", led_bundle.p2p_messages)
    doc.record("field.p2p_messages", led_field.p2p_messages)
    doc.record("alltoall.total_messages", led_a2a.total_messages)
    doc.record("plan.message_reduction",
               plan.message_counts(N_PES)["message_reduction"])

    # Pruning arithmetic (gated).
    reg = FieldRegistry.cesm_default()
    reg.mark_used("x2o", ["Foxx_taux", "Foxx_tauy", "Foxx_swnet",
                          "Foxx_lwdn", "Foxx_sen", "Foxx_lat", "Foxx_rain"])
    savings = reg.savings("x2o", lsize=GSIZE // N_PES)
    doc.record("prune.x2o_fraction_saved", savings["fraction_saved"])
    doc.record("prune.x2o_bytes_after", savings["bytes_after"], unit="B")

    # Cache behaviour (gated counts).
    cold = CouplerCache(tmp_path / "bench-cache")
    cold.get_router("src", "dst", src, dst)
    warm = CouplerCache(tmp_path / "bench-cache")
    warm.get_router("src", "dst", src, dst)
    doc.record("cache.cold_misses", cold.misses)
    doc.record("cache.warm_hits", warm.hits)

    # Modeled time at paper scale (gated, deterministic model output).
    p, nbytes, lat, bw = 100_000, 64 * 1024, 2.5e-6, 2.0e10
    m_d, b_d = cost_alltoall(nbytes, p)
    m_s, b_s = cost_alltoall_sparse(nbytes, 16, p)
    doc.record("model.dense_alltoall_s", m_d * lat + b_d / bw, kind="model", unit="s")
    doc.record("model.sparse_p2p_s", m_s * lat + b_s / bw, kind="model", unit="s")
    doc.record("model.plan_latency_s", edges * lat, kind="model", unit="s")
    doc.record("model.field_latency_s", edges * N_PLAN_FIELDS * lat,
               kind="model", unit="s")

    # Wall times (informational only — never gated).
    t0 = time.perf_counter()
    Router.build(src, dst)
    doc.record("wall.router_build_ms", (time.perf_counter() - t0) * 1e3,
               kind="wall", unit="ms")
    path = tmp_path / "bench-router.npz"
    router.to_file(path)
    t0 = time.perf_counter()
    Router.from_file(path)
    doc.record("wall.router_load_ms", (time.perf_counter() - t0) * 1e3,
               kind="wall", unit="ms")
    return doc


def test_emit_bench_coupler_json(maps, router, tmp_path, report_dir):
    """Emit BENCH_coupler.json — the document the CI perf gate compares
    against benchmarks/baselines/BENCH_coupler.json."""
    doc = _bench_document(maps, router, tmp_path)
    emit(doc, report_dir)


def test_gate_against_committed_baseline(maps, router, tmp_path):
    """The acceptance check the CI job runs: the fresh document must pass
    the 15 % gate against the committed baseline."""
    baseline_path = BASELINE_DIR / BENCH_JSON
    if not baseline_path.exists():
        pytest.skip("no committed baseline yet")
    doc = _bench_document(maps, router, tmp_path)
    comparison = compare_baselines(
        doc, PerfBaseline.from_file(baseline_path), tolerance=0.15
    )
    print("\n" + comparison.report())
    assert comparison.ok, comparison.report()
