"""Ablations of the design choices behind the paper's optimizations.

Each ablation removes one mechanism and measures the damage:

* **TRSK weight antisymmetrization** — without it the nonlinear Coriolis
  term injects/drains kinetic energy (the dycore's conservation rests on it);
* **cache term in the machine model** — without it the super-linear OCN
  MPE efficiency (published 118 %) cannot appear;
* **hybrid host-device split** — device-only vs balanced hybrid;
* **ocean coupling frequency** — the paper couples the ocean 5x less often
  than the atmosphere; coupling it every step raises the coupler cost;
* **SFC vs naive partitioning** — halo/interior ratios, the communication
  term's driver;
* **face pruning** — exchange bytes with and without it.
"""

import numpy as np
import pytest

from repro.bench import banner, format_table
from repro.grids import IcosPartition, trsk
from repro.machine import (
    CouplingSpec,
    MPE_PROCESSOR,
    PerfModel,
    ProcessorSpec,
    ocn_workload,
    sunway_oceanlight,
)
from repro.parallel import partition_cells_contiguous, partition_cells_space_filling
from repro.pp import CPECluster, HybridDispatcher, Serial


@pytest.fixture(scope="module")
def grid(icos4):
    return icos4


class TestTRSKAntisymmetry:
    def _coriolis_energy(self, grid, weights):
        rng = np.random.default_rng(0)
        u = rng.standard_normal(grid.n_edges)
        ee = grid.edge_edges
        mask = ee >= 0
        vals = u[np.where(mask, ee, 0)]
        tangential = np.sum(weights * np.where(mask, vals, 0.0), axis=1)
        return float(np.sum(grid.le * grid.de * u * tangential)) / float(
            np.sum(grid.le * grid.de * u * u)
        )

    def test_ablation(self, grid, emit_report):
        with_anti = abs(self._coriolis_energy(grid, grid.edge_weights))
        # Break the antisymmetry: perturb the weights by 1 %.
        rng = np.random.default_rng(1)
        broken = grid.edge_weights * (1.0 + 0.01 * rng.standard_normal(grid.edge_weights.shape))
        without = abs(self._coriolis_energy(grid, broken))
        emit_report(
            "ablation_trsk_antisymmetry",
            "\n".join([
                banner("Ablation: TRSK weight antisymmetrization"),
                format_table(
                    ["variant", "relative KE tendency of the Coriolis term"],
                    [("antisymmetrized (ours)", f"{with_anti:.2e}"),
                     ("1% perturbed weights", f"{without:.2e}")],
                ),
                "\nwithout exact antisymmetry the PV term pumps kinetic "
                "energy at a finite rate — the long-run stability of the "
                "dycore rests on this property.",
            ]),
        )
        assert with_anti < 1e-12
        assert without > 1e-5


class TestCacheTerm:
    def test_superlinear_needs_cache_model(self, emit_report):
        """OCN MPE published efficiencies reach 118 %: only reproducible
        with the working-set/cache bonus in the processor model."""
        machine = sunway_oceanlight()
        wl = ocn_workload(18000 * 11511, 80)

        def efficiency_at_2x(model):
            cal, wlc = model.calibrated(wl, [(19608, 0.0014)])
            s1 = cal.predict_sypd(wlc, 19608)
            s2 = cal.predict_sypd(wlc, 2 * 19608)
            return (s2 / s1) / 2.0

        with_cache = PerfModel(machine, mode="host")
        nocache_proc = ProcessorSpec(
            name="MPE-nocache",
            flops=MPE_PROCESSOR.flops,
            mem_bw=MPE_PROCESSOR.mem_bw,
            cache_bytes=0.0,
            cache_speedup=1.0,
        )
        no_cache = PerfModel(machine.with_processor(nocache_proc), mode="accelerated")

        eff_cache = efficiency_at_2x(with_cache)
        eff_plain = efficiency_at_2x(no_cache)
        emit_report(
            "ablation_cache_term",
            "\n".join([
                banner("Ablation: cache term in the MPE processor model"),
                format_table(
                    ["variant", "strong-scaling efficiency at 2x cores"],
                    [("with cache bonus", eff_cache), ("without", eff_plain),
                     ("paper (Table 2)", 1.18)],
                ),
            ]),
        )
        assert eff_plain <= 1.01  # never super-linear without the cache term


class TestHybridSplit:
    def test_balanced_beats_device_only(self, emit_report):
        host, dev = Serial(), CPECluster(64)
        hybrid = HybridDispatcher(host, dev).rebalanced()
        device_only = HybridDispatcher(host, dev, device_fraction=1.0)
        n, fpi = 10_000_000, 50.0
        t_h = hybrid.modeled_time(fpi, n)
        t_d = device_only.modeled_time(fpi, n)
        emit_report(
            "ablation_hybrid_split",
            "\n".join([
                banner("Ablation: hybrid host-device split (§5.3)"),
                format_table(
                    ["variant", "modeled kernel time [ms]"],
                    [("balanced hybrid", t_h * 1e3), ("device only", t_d * 1e3)],
                ),
                f"\ngain: {100 * (1 - t_h / t_d):.2f}% (the MPE contributes "
                "its share while the CPEs work)",
            ]),
        )
        assert t_h < t_d


class TestCouplingFrequency:
    def test_paper_ratio_cheaper_than_every_step(self, emit_report):
        model = PerfModel(sunway_oceanlight())
        paper = CouplingSpec(
            exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
            bytes_per_exchange={"atm": 4.2e8, "ocn": 1.7e9, "ice": 4.2e8},
        )
        everystep = CouplingSpec(
            exchanges_per_day={"atm": 180.0, "ocn": 180.0, "ice": 180.0},
            bytes_per_exchange=paper.bytes_per_exchange,
        )
        n = 100_000
        t_paper = paper.time_per_day(model, n)
        t_every = everystep.time_per_day(model, n)
        emit_report(
            "ablation_coupling_frequency",
            "\n".join([
                banner("Ablation: ocean coupling frequency (180:36 vs 180:180)"),
                format_table(
                    ["variant", "coupler seconds per simulated day"],
                    [("paper ratio (36/day ocean)", t_paper),
                     ("every atm coupling (180/day)", t_every)],
                ),
            ]),
        )
        assert t_paper < t_every


class TestPartitioning:
    def test_sfc_beats_contiguous(self, grid, emit_report):
        n_ranks = 32
        sfc = IcosPartition.build(grid, n_ranks)
        naive_owners = partition_cells_contiguous(grid.n_cells, n_ranks)
        # Surface-to-volume via the partition machinery on both.
        naive = IcosPartition(
            grid, n_ranks, naive_owners.astype(np.int64),
            [np.sort(np.where(naive_owners == r)[0]) for r in range(n_ranks)],
            IcosPartition.build(grid, n_ranks).halo_cells,  # placeholder
        )
        # Recompute halos properly for the naive partition.
        c1, c2 = grid.edge_cells[:, 0], grid.edge_cells[:, 1]
        halos = []
        for r in range(n_ranks):
            nb = np.concatenate([c2[naive_owners[c1] == r], c1[naive_owners[c2] == r]])
            halos.append(np.unique(nb[naive_owners[nb] != r]))
        naive.halo_cells = halos

        s_sfc = float(np.mean([sfc.surface_to_volume(r) for r in range(n_ranks)]))
        s_naive = float(np.mean([naive.surface_to_volume(r) for r in range(n_ranks)]))
        emit_report(
            "ablation_partitioning",
            "\n".join([
                banner("Ablation: SFC vs index-contiguous cell partitioning"),
                format_table(
                    ["partitioner", "mean halo/interior ratio (32 ranks)"],
                    [("space-filling curve (ours)", s_sfc),
                     ("index-contiguous", s_naive)],
                ),
                "\nthe halo/interior ratio is the communication term's "
                "prefactor in the machine model: SFC partitions directly "
                "buy strong-scaling efficiency.",
            ]),
        )
        assert s_sfc < s_naive


def test_benchmark_sfc_partition(benchmark, icos4):
    owners = benchmark(
        partition_cells_space_filling, icos4.lon_cell, icos4.lat_cell, 32
    )
    assert len(np.unique(owners)) == 32


class TestTaskParallelStrategy:
    def test_sequential_vs_concurrent(self, emit_report):
        """§5.1.2's two strategies priced at three scales: the concurrent
        two-domain layout (the paper's choice) wins once strong scaling
        rolls off; time-slicing wins while scaling is near-linear."""
        from dataclasses import replace

        from repro.bench import STRONG_SCALING_CURVES, resources_to_processes
        from repro.esm.config import GRIST_CONFIGS, LICOM_CONFIGS
        from repro.machine import CoupledPerfModel, atm_workload as _atm

        model = PerfModel(sunway_oceanlight(), mode="accelerated")
        atm_curve = STRONG_SCALING_CURVES["atm_3km_cpe"]
        wl_a = _atm(int(GRIST_CONFIGS[3.0].cells), 30)
        cal_a, wl_a = model.calibrated(
            wl_a,
            [(resources_to_processes(atm_curve, p.resources), p.sypd)
             for p in atm_curve.anchors()],
        )
        ocn_curve = STRONG_SCALING_CURVES["ocn_2km_cpe"]
        wl_o = ocn_workload(
            LICOM_CONFIGS[2.0].nlon * LICOM_CONFIGS[2.0].nlat, 80, compressed=True
        )
        cal_o, wl_o = model.calibrated(
            wl_o,
            [(resources_to_processes(ocn_curve, p.resources), p.sypd)
             for p in ocn_curve.anchors()],
        )
        cm = replace(
            CoupledPerfModel(
                model1=cal_a, model2=cal_o, domain1=(wl_a,), domain2=(wl_o,),
                coupling=CouplingSpec(
                    exchanges_per_day={"atm": 180.0, "ocn": 36.0, "ice": 180.0},
                    bytes_per_exchange={"atm": 4.2e8, "ocn": 1.7e9, "ice": 4.2e8},
                ),
            ),
            sync_imbalance=0.3,
        )
        rows = []
        for total in (50_000, 260_000, 560_000):
            out = cm.strategy_comparison(total)
            rows.append((
                f"{total:,}", out["sequential_s_per_day"],
                out["concurrent_s_per_day"], out["speedup"],
            ))
        emit_report(
            "ablation_task_strategy",
            "\n".join([
                banner("Ablation: §5.1.2 task strategies (3v2 configuration)"),
                format_table(
                    ["processes", "sequential [s/day]", "concurrent [s/day]",
                     "concurrent speedup"],
                    rows,
                ),
                "\nthe crossover: time-slicing the whole machine wins while "
                "strong scaling is near-linear; the paper's concurrent "
                "two-domain layout wins at its operating scale.",
            ]),
        )
        assert rows[-1][3] > 1.1  # concurrent wins at scale
