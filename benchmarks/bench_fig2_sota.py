"""Fig. 2: the state-of-the-art survey of high-resolution coupled models.

Reproduces the figure's construction: SYPD vs total grid points for the
surveyed models, with the dividing line "from a log-linear fit between the
CNRM (2019) and the CESM (2024)" cases, and AP3ESM above it at the largest
grid counts reported to date.
"""

import math

import numpy as np
import pytest

from repro.bench import SOTA_MODELS, banner, format_table


def sota_line():
    """The paper's dividing line: log-linear through the two endpoints."""
    endpoints = [m for m in SOTA_MODELS if m.is_fit_endpoint]
    assert len(endpoints) == 2
    (a, b) = endpoints
    x1, y1 = math.log10(a.total_grid_points), math.log10(a.sypd)
    x2, y2 = math.log10(b.total_grid_points), math.log10(b.sypd)
    slope = (y2 - y1) / (x2 - x1)

    def line(points: float) -> float:
        return 10 ** (y1 + slope * (math.log10(points) - x1))

    return line, slope


@pytest.fixture(scope="module")
def line_and_slope():
    return sota_line()


def test_fig2_report(line_and_slope, emit_report):
    line, slope = line_and_slope
    rows = []
    for m in sorted(SOTA_MODELS, key=lambda m: m.total_grid_points):
        expected = line(m.total_grid_points)
        rows.append((
            m.name, f"{m.total_grid_points:.1e}", m.sypd, expected,
            "ABOVE" if m.sypd > expected else "below",
        ))
    emit_report(
        "fig2_sota",
        "\n".join([
            banner("Fig. 2 — high-resolution coupled-model survey"),
            format_table(
                ["model", "grid points", "SYPD", "SOTA line", "position"], rows
            ),
            f"\nlog-log slope of the SOTA line: {slope:.3f} "
            "(throughput falls with grid size)",
        ]),
    )


def test_line_slope_negative(line_and_slope):
    _, slope = line_and_slope
    assert slope < 0


def test_ap3esm_above_the_line(line_and_slope):
    """The figure's claim: both AP3ESM configurations beat the SOTA line."""
    line, _ = line_and_slope
    for m in SOTA_MODELS:
        if "this work" in m.name:
            assert m.sypd > line(m.total_grid_points), m.name


def test_ap3esm_has_most_grid_points():
    """'the highest total number of grid points reported to date'."""
    best = max(SOTA_MODELS, key=lambda m: m.total_grid_points)
    assert "AP3ESM 1v1" in best.name
    assert best.total_grid_points == pytest.approx(7.2e10, rel=0.01)


def test_benchmark_line_fit(benchmark):
    line, _ = benchmark(sota_line)
    assert line(1e9) > 0
