"""Calibration drift benchmark: keep the machine model honest.

Fits a :class:`repro.machine.CalibrationTable` from the probe portfolio,
re-measures, and emits per-kernel modeled-vs-measured drift through the
``drift`` metric kind — the committed value in
``benchmarks/baselines/BENCH_calibration.json`` is never a target
(measurements are machine-dependent), but CI fails when |drift| leaves
the tolerance band or goes non-finite.  Deterministic structure (probe
count, launch count, tagged workload phases, table round-trip) is gated
hard like any other ``count`` metric.
"""

import pytest

from repro.bench import PerfBaseline, banner, compare_baselines, emit, format_table
from repro.machine import (
    CalibrationTable,
    calibrate,
    drift_report,
    measure_probes,
)
from repro.machine.workloads import atm_workload, ice_workload, lnd_workload, ocn_workload

BENCH_JSON = "BENCH_calibration.json"
BASELINE_DIR = __import__("pathlib").Path(__file__).parent / "baselines"

#: Wider than the count/model gate: probe timings on shared CI runners are
#: noisy, and the drift band only has to catch order-of-magnitude rot.
DRIFT_TOLERANCE = 1.0

SIZES = (16_384, 65_536)
REPEATS = 3


@pytest.fixture(scope="module")
def fit():
    """One fit + one independent re-measurement, shared by every test."""
    table = calibrate(sizes=SIZES, repeats=REPEATS)
    fresh = measure_probes(sizes=SIZES, repeats=REPEATS)
    return table, fresh


def _tagged_phases() -> int:
    workloads = (
        atm_workload(10_000),
        atm_workload(10_000, ai_physics=False),
        ocn_workload(10_000),
        ice_workload(10_000),
        lnd_workload(10_000),
    )
    return sum(
        sum(1 for ph in w.phases if ph.kernel is not None) for w in workloads
    )


def _bench_document(table: CalibrationTable, fresh, tmp_path) -> PerfBaseline:
    doc = PerfBaseline(suite="calibration")

    # Deterministic structure: gated hard.
    doc.record("calibration.kernels", len(table.entries))
    doc.record("calibration.probe_launches", table.meta["probe_launches"])
    doc.record("calibration.tagged_phases", _tagged_phases())
    roundtrip = CalibrationTable.from_file(table.to_file(tmp_path / "table.json"))
    doc.record(
        "calibration.table_roundtrip_ok",
        float(roundtrip.table_id == table.table_id),
    )

    # The loop-closing signal: modeled-vs-measured drift per kernel.
    report = drift_report(table, fresh, tolerance=DRIFT_TOLERANCE)
    for entry in report.entries:
        doc.record(f"calibration.drift.{entry.kernel}", entry.drift, kind="drift")

    # Machine-dependent context, informational only.
    doc.record("wall.worst_abs_drift", report.worst, kind="wall")
    doc.record(
        "wall.probe_total_s",
        sum(e.measured_s for e in table.entries.values()),
        kind="wall",
        unit="s",
    )
    return doc


def test_table_fits_every_probe(fit):
    table, fresh = fit
    assert set(table.entries) == set(fresh)
    assert len(table.entries) == 5


def test_drift_report_covers_table(fit):
    """Every table kernel is re-measured — nothing is left unverifiable."""
    table, fresh = fit
    report = drift_report(table, fresh, tolerance=DRIFT_TOLERANCE)
    assert not report.missing_measurements
    assert not report.uncalibrated
    assert len(report.entries) == len(table.entries)


def test_report(fit, emit_report):
    table, fresh = fit
    report = drift_report(table, fresh, tolerance=DRIFT_TOLERANCE)
    rows = [
        (e.kernel, f"{e.modeled_s * 1e3:.3f}", f"{e.measured_s * 1e3:.3f}",
         f"{e.drift:+.1%}")
        for e in sorted(report.entries, key=lambda e: e.kernel)
    ]
    emit_report(
        "calibration",
        "\n".join([
            banner("Measurement-calibrated machine model (repro calibrate)"),
            table.report(),
            "",
            format_table(
                ["kernel", "modeled [ms]", "measured [ms]", "drift"], rows
            ),
            f"\nworst |drift|: {report.worst:.1%} "
            f"(band +/-{DRIFT_TOLERANCE:.0%}) -> "
            f"{'OK' if report.ok else 'FAIL'}",
        ]),
    )


def test_emit_bench_calibration_json(fit, tmp_path, report_dir):
    """Emit BENCH_calibration.json — the document the CI perf gate compares
    against benchmarks/baselines/BENCH_calibration.json."""
    table, fresh = fit
    doc = _bench_document(table, fresh, tmp_path)
    emit(doc, report_dir)


def test_gate_against_committed_baseline(fit, tmp_path):
    """The acceptance check the CI job runs: structural counts must match
    the committed baseline within 15 %, and every drift metric must sit
    inside the +/-100 % band (fresh value only — the committed drift is
    documentation, not a target)."""
    baseline_path = BASELINE_DIR / BENCH_JSON
    if not baseline_path.exists():
        pytest.skip("no committed baseline yet")
    table, fresh = fit
    doc = _bench_document(table, fresh, tmp_path)
    comparison = compare_baselines(
        doc,
        PerfBaseline.from_file(baseline_path),
        tolerance=0.15,
        drift_tolerance=DRIFT_TOLERANCE,
    )
    print("\n" + comparison.report())
    assert comparison.ok, comparison.report()
