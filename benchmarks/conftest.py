"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and emits a
paper-vs-measured report: printed to the terminal (run with ``-s`` to see
it live) and written to ``benchmarks/reports/<name>.txt`` for
EXPERIMENTS.md.
"""

import sys
from pathlib import Path

import pytest

from repro.grids import IcosahedralGrid

REPORT_DIR = Path(__file__).parent / "reports"


def pytest_addoption(parser):
    parser.addoption(
        "--emit-trace",
        action="store_true",
        default=False,
        help="record structured traces during benchmarks and write "
             "Chrome-trace JSON (chrome://tracing / Perfetto) to "
             "benchmarks/reports/traces/<test>.json",
    )


@pytest.fixture(scope="session")
def icos4():
    """Level-4 icosahedral grid: 2562 cells (~450 km spacing)."""
    return IcosahedralGrid.build(4)


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def obs(request, report_dir):
    """Observability handle for a benchmark: disabled (near-zero cost)
    unless ``--emit-trace`` is given, in which case the whole test runs inside
    a root span and the trace + metrics land under ``reports/traces/``."""
    from repro.obs import Obs

    handle = Obs(enabled=bool(request.config.getoption("--emit-trace")))
    with handle.span(request.node.name):
        yield handle
    if handle.enabled:
        safe = request.node.name.replace("/", "_").replace("[", "_").rstrip("]")
        path = handle.write_chrome_trace(report_dir / "traces" / f"{safe}.json")
        print(f"\n[trace] {path}")


@pytest.fixture
def emit_report(report_dir):
    """Callable: emit_report(name, text) -> prints and persists."""

    def _emit(name: str, text: str) -> None:
        print(text)
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
