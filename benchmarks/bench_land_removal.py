"""§5.2.2: excluding 3-D non-ocean grid points.

Measures the full pipeline on the synthetic tripolar earth: wet fractions
and the resource reduction (paper: "about 30 %"), bit-consistent
compressed execution, the rank remapping's load-balance gain, the rebuilt
communication topology, and the end-to-end effect in the ORISE machine
model (the Original-vs-OPT gap of Table 2, published 1.2x at full scale).
"""

import numpy as np
import pytest

from repro.bench import HEADLINES, STRONG_SCALING_CURVES, banner, evaluate_curve, format_table
from repro.grids import TripolarGrid
from repro.ocn import (
    Compressor,
    block_owner_map,
    compressed_equals_full,
    load_stats,
    wet_partition,
    wet_topology_matrix,
)
from repro.parallel import comm_graph_from_matrix, greedy_locality_mapping, traffic_split


@pytest.fixture(scope="module")
def grid():
    return TripolarGrid.build(180, 120, n_levels=30)


@pytest.fixture(scope="module")
def mask3d(grid):
    return grid.levels_mask()


@pytest.fixture(scope="module")
def compressor(mask3d):
    return Compressor(mask3d)


def test_land_removal_report(grid, mask3d, compressor, emit_report):
    n_ranks = 24
    before = block_owner_map(mask3d, py=4, px=6)
    after = wet_partition(mask3d, n_ranks)
    s_before = load_stats(mask3d, before, n_ranks)
    s_after = load_stats(mask3d, after, n_ranks)

    mat = wet_topology_matrix(after, n_ranks)
    graph = comm_graph_from_matrix(mat)
    placement = greedy_locality_mapping(graph, n_nodes=8, ranks_per_node=3,
                                        nodes_per_supernode=4)
    split = traffic_split(graph, placement)
    total_traffic = max(sum(split.values()), 1)

    rows = [
        ("2-D ocean fraction", grid.ocean_fraction, 0.71),
        ("3-D wet fraction", grid.wet_fraction_3d(), None),
        ("points removed", compressor.reduction, HEADLINES["nonocean_removal_saving"]),
        ("load imbalance before", s_before["imbalance"], None),
        ("load imbalance after", s_after["imbalance"], None),
        ("traffic kept off top fat-tree level",
         1.0 - split["inter_supernode"] / total_traffic, None),
    ]
    emit_report(
        "land_removal",
        "\n".join([
            banner("§5.2.2 — 3-D non-ocean point removal"),
            format_table(["metric", "measured", "paper"], rows),
            "\nnote: the synthetic earth's coastal shelves make the 3-D "
            "removal (~40 %) somewhat larger than the paper's ~30 % on the "
            "real bathymetry; the 2-D ocean fraction matches Earth's 71 %.",
        ]),
    )
    assert s_after["imbalance"] < s_before["imbalance"]


def test_reduction_in_band(compressor):
    """'about 30 % computational resource reduction' — the synthetic earth
    lands in the 25-45 % band."""
    assert 0.25 < compressor.reduction < 0.45


def test_consistent_results_bitwise(compressor, mask3d):
    """'consistent results': packed kernels equal masked full kernels."""
    rng = np.random.default_rng(0)
    field = rng.standard_normal(mask3d.shape) + 4.0

    def canuto_like(x):
        return 1e-5 + 1e-2 / (1.0 + np.abs(x) / 0.3) ** 2

    assert compressed_equals_full(compressor, canuto_like, field)


def test_orise_original_vs_opt_speedup():
    """Table 2's two ORISE curves: OPT over Original at the largest scale
    (published 1.2x)."""
    opt = evaluate_curve(STRONG_SCALING_CURVES["ocn_1km_orise_opt"])
    orig = evaluate_curve(STRONG_SCALING_CURVES["ocn_1km_orise_original"])
    speedup = opt.modeled[-1] / orig.modeled[-1]
    assert speedup == pytest.approx(HEADLINES["speedup_vs_gb24_record"], abs=0.15)


def test_memory_saving_matches_reduction(compressor):
    full, packed = compressor.memory_bytes(n_fields=4)
    assert packed / full == pytest.approx(1.0 - compressor.reduction, rel=1e-12)


def test_benchmark_compress_roundtrip(benchmark, compressor, mask3d):
    field = np.random.default_rng(1).standard_normal(mask3d.shape)

    def roundtrip():
        return compressor.decompress(compressor.compress(field))

    out = benchmark(roundtrip)
    assert np.array_equal(out[mask3d], field[mask3d])


def test_benchmark_wet_partition(benchmark, mask3d):
    owners = benchmark(wet_partition, mask3d, 24)
    assert owners.max() == 23
